#pragma once

// The combined k-LSM relaxed priority queue (paper Section 4.3, Listing 5)
// — the paper's primary contribution.
//
// Composition:
//   * one DistLSM per thread slot, bounded to k items; inserts batch
//     locally and spill whole sorted blocks into the shared k-LSM when
//     the bound is exceeded, cutting the shared structure's sequential
//     update frequency by a factor of roughly k;
//   * one shared k-LSM, whose delete-min draws uniformly from the <= k+1
//     smallest keys;
//   * spying: a thread whose local and shared views are both empty copies
//     item references from a random victim's DistLSM.
//
// Guarantees (Section 5): insert and try_delete_min are lock-free;
// try_delete_min is linearizable under structural rho-relaxation with
// rho = T*k (T = number of participating threads), and local ordering
// semantics hold — a thread never skips keys it inserted itself, because
// its own DistLSM is always consulted and the shared find_min prefers the
// thread's own minimum (Bloom filter check).
//
// The Lazy template parameter implements Section 4.5's lazy deletion: a
// stateful predicate consulted whenever items are copied between blocks
// (see lazy.hpp); the default never deletes.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "adapt/contention_monitor.hpp"
#include "klsm/dist_lsm.hpp"
#include "klsm/item.hpp"
#include "klsm/lazy.hpp"
#include "klsm/shared_lsm.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "trace/tracer.hpp"
#include "util/slot_directory.hpp"
#include "util/thread_id.hpp"

namespace klsm {

template <typename K, typename V, typename Lazy = no_lazy>
class k_lsm {
public:
    using key_type = K;
    using value_type = V;

    /// `k` is the relaxation parameter: try_delete_min may return any of
    /// the rho + 1 smallest keys, rho = T*k.  k == 0 degenerates to the
    /// shared LSM alone (every insert publishes immediately).
    /// `place` governs where every pool's pages live (mm/placement.hpp;
    /// numa_klsm constructs each shard with that shard's node).
    explicit k_lsm(std::size_t k, Lazy lazy = {},
                   mm::mem_placement place = {})
        : k_(k), max_k_seen_(k), lazy_(lazy), place_(place),
          shared_(k, place) {
        for (auto &d : dist_)
            d = std::make_unique<dist_lsm_local<K, V>>(place);
    }

    k_lsm(const k_lsm &) = delete;
    k_lsm &operator=(const k_lsm &) = delete;

    std::size_t relaxation() const {
        return k_.load(std::memory_order_relaxed);
    }

    /// Change the relaxation parameter online (src/adapt/'s controller
    /// drives this).  Safe against concurrent inserts/deletes: every
    /// hot path reads k once, and any mix of old and new values is a
    /// valid relaxation.  The worst-case rank bound for a run whose k
    /// changed is rho = T * max_relaxation_seen().
    void set_relaxation(std::size_t k) {
        k_.store(k, std::memory_order_relaxed);
        shared_.set_relaxation(k);
        std::size_t cur = max_k_seen_.load(std::memory_order_relaxed);
        while (k > cur && !max_k_seen_.compare_exchange_weak(
                              cur, k, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
        }
    }

    /// The largest k this queue has ever run with — what rank-error
    /// bounds must be computed against after an adaptive run.
    std::size_t max_relaxation_seen() const {
        return max_k_seen_.load(std::memory_order_relaxed);
    }

    /// Attach (or detach, with nullptr) contention telemetry: publish
    /// CAS outcomes, the shared/local delete-hit mix, and spy events
    /// are reported to the monitor.
    void set_monitor(adapt::contention_monitor *m) {
        monitor_.store(m, std::memory_order_relaxed);
        shared_.set_monitor(m);
    }

    // ---- handle buffering knobs (dynamic_buffering concept) -------------
    //
    // Handles read these per operation, so retuning a live queue is safe:
    // a handle holding more than the new depth simply flushes on its next
    // insert.  Rank-error bounds after a run with buffering must use
    // max_buffer_depth_seen(), the high-water mark of the per-handle
    // hidden-item budget (insert buffer depth plus the delete-side peek
    // cache; with the cache off but the insert buffer on, one delete-side
    // carry slot can still hold an unserved popped item, hence the +1).

    /// Per-handle insert-buffer depth; 0 = unbuffered (every h.insert
    /// reaches the DistLSM immediately).
    std::size_t buffer_depth() const {
        return ins_depth_.load(std::memory_order_relaxed);
    }

    void set_buffer_depth(std::size_t d) {
        ins_depth_.store(d, std::memory_order_relaxed);
        note_buffer_high_water();
    }

    /// Per-handle delete-side peek-cache depth; 0 = every h.try_delete_min
    /// peeks the shared LSM itself.
    std::size_t peek_cache_depth() const {
        return peek_depth_.load(std::memory_order_relaxed);
    }

    void set_peek_cache_depth(std::size_t d) {
        peek_depth_.store(d, std::memory_order_relaxed);
        note_buffer_high_water();
    }

    /// Items a single handle may currently hide from other threads:
    /// insert buffer + effective peek cache (see note above).
    std::size_t buffer_total() const {
        const std::size_t ib = ins_depth_.load(std::memory_order_relaxed);
        const std::size_t pc =
            peek_depth_.load(std::memory_order_relaxed);
        return ib + (pc > 0 ? pc : (ib > 0 ? 1 : 0));
    }

    /// High-water mark of buffer_total() over the queue's lifetime — the
    /// per-thread term rank bounds must be computed against.
    std::size_t max_buffer_depth_seen() const {
        return max_buffer_seen_.load(std::memory_order_relaxed);
    }

    void insert(const K &key, const V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_[slot]->insert(
            key, value, slot, k_.load(std::memory_order_relaxed), lazy_,
            [this](block<K, V> *b, std::uint32_t filled) {
                shared_.insert(b, filled, lazy_);
            });
    }

    /// Insert `n` pairs, pre-sorted in DECREASING key order, as one
    /// block (the handle's flush path; see dist_lsm::insert_batch).
    void insert_batch(const std::pair<K, V> *kv, std::size_t n) {
        const std::uint32_t slot = dir_.register_self();
        dist_[slot]->insert_batch(
            kv, n, slot, k_.load(std::memory_order_relaxed), lazy_,
            [this](block<K, V> *b, std::uint32_t filled) {
                shared_.insert(b, filled, lazy_);
            });
    }

    /// Attempt to delete a minimal key under the relaxed semantics.
    /// Returns false if the queue appears empty (may fail spuriously; the
    /// paper's interface explicitly permits this as long as a key is
    /// eventually returned given enough attempts).
    bool try_delete_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_lsm_local<K, V> &mine = *dist_[slot];
        do {
            for (;;) {
                // Listing 5: consult both components, prefer the smaller.
                item_ref<K, V> cand = mine.find_min(lazy_);
                item_ref<K, V> shared_cand = shared_.find_min(slot, lazy_);
                bool from_shared = false;
                if (!shared_cand.empty() &&
                    (cand.empty() || shared_cand.key < cand.key)) {
                    cand = shared_cand;
                    from_shared = true;
                }
                if (cand.empty())
                    break; // both empty: try spying
                // Read the payload before the take; CAS success certifies
                // the payload read (see item.hpp).
                const V v = cand.it->value();
                if (cand.take()) {
                    key = cand.key;
                    value = v;
                    note(from_shared ? adapt::event::delete_hit_shared
                                     : adapt::event::delete_hit_local);
                    return true;
                }
                // Someone else deleted it first; that thread made
                // progress, so retrying keeps us lock-free.
            }
        } while (spy(slot));
        return false;
    }

    /// Best-effort find-min (Section 4's try_find_min extension): returns
    /// a key/value that was among the relaxed minima at some recent
    /// point; false if the queue appears empty.
    bool try_find_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        item_ref<K, V> cand = dist_[slot]->find_min(lazy_);
        item_ref<K, V> shared_cand = shared_.find_min(slot, lazy_);
        if (!shared_cand.empty() &&
            (cand.empty() || shared_cand.key < cand.key))
            cand = shared_cand;
        if (cand.empty())
            return false;
        key = cand.key;
        value = cand.it->value();
        return cand.it->is_alive(cand.version);
    }

    /// Per-thread operation handle (buffered k-LSM).  Owned by exactly
    /// one thread; not thread-safe.
    ///
    ///   * insert: staged locally up to buffer_depth() pairs, then the
    ///     whole run is sorted descending and enters the owner's DistLSM
    ///     as ONE pre-sorted block via insert_batch — one merge chain
    ///     (and at most one shared-LSM spill) per batch instead of per
    ///     insert.
    ///   * try_delete_min: refills a local peek cache by popping up to
    ///     max(peek_cache_depth(), 1) keys in one burst, then serves the
    ///     cache — the k slack is spent in amortized bursts instead of
    ///     one CAS-laden shared-LSM peek per op.  Local ordering
    ///     semantics are preserved: every delete first consults the
    ///     handle's own staged inserts and serves the smaller key.
    ///   * flush(): staged inserts become visible, cached-but-unserved
    ///     deletions are reinserted.  Destruction flushes.
    ///
    /// Each handle hides at most buffer_total() items, so T threads stay
    /// within rho = (T+1)*k + T*buffer_total (quality.hpp's extended
    /// accounting).
    class handle {
    public:
        using key_type = K;
        using value_type = V;

        static constexpr std::size_t npos =
            static_cast<std::size_t>(-1);

        explicit handle(k_lsm &q) : q_(&q) {}

        handle(handle &&other) noexcept
            : q_(other.q_), buf_(std::move(other.buf_)),
              cache_(std::move(other.cache_)),
              cache_head_(other.cache_head_) {
            other.q_ = nullptr;
        }
        handle(const handle &) = delete;
        handle &operator=(const handle &) = delete;
        handle &operator=(handle &&) = delete;

        ~handle() {
            if (q_ != nullptr)
                flush();
        }

        void insert(const K &key, const V &value) {
            const std::size_t depth =
                q_->ins_depth_.load(std::memory_order_relaxed);
            if (depth == 0) {
                q_->insert(key, value);
                return;
            }
            buf_.emplace_back(key, value);
            if (buf_.size() >= depth)
                flush_inserts();
        }

        bool try_delete_min(K &key, V &value) {
            for (;;) {
                if (cache_head_ < cache_.size()) {
                    // The cache is ascending (popped smallest-first), so
                    // its head is the best cached key; a smaller staged
                    // insert must be served instead (local ordering).
                    const std::size_t m = buf_min_index();
                    if (m != npos &&
                        buf_[m].first < cache_[cache_head_].first) {
                        serve_buf(m, key, value);
                        return true;
                    }
                    key = cache_[cache_head_].first;
                    value = cache_[cache_head_].second;
                    ++cache_head_;
                    if (cache_head_ == cache_.size()) {
                        cache_.clear();
                        cache_head_ = 0;
                    }
                    return true;
                }
                if (refill())
                    continue;
                // The queue looked empty; the staged inserts are all
                // that is left to serve.
                const std::size_t m = buf_min_index();
                if (m == npos)
                    return false;
                serve_buf(m, key, value);
                return true;
            }
        }

        /// Publish every buffered effect.  Cheap no-op when empty.
        void flush() {
            flush_inserts();
            for (std::size_t i = cache_head_; i < cache_.size(); ++i)
                q_->insert(cache_[i].first, cache_[i].second);
            cache_.clear();
            cache_head_ = 0;
        }

        // White-box observability for tests.
        std::size_t inserts_buffered() const { return buf_.size(); }
        std::size_t deletes_cached() const {
            return cache_.size() - cache_head_;
        }

    private:
        std::size_t buf_min_index() const {
            std::size_t best = npos;
            for (std::size_t i = 0; i < buf_.size(); ++i)
                if (best == npos || buf_[i].first < buf_[best].first)
                    best = i;
            return best;
        }

        void serve_buf(std::size_t i, K &key, V &value) {
            key = buf_[i].first;
            value = buf_[i].second;
            buf_[i] = buf_.back();
            buf_.pop_back();
        }

        void flush_inserts() {
            if (buf_.empty())
                return;
            std::sort(buf_.begin(), buf_.end(),
                      [](const std::pair<K, V> &a,
                         const std::pair<K, V> &b) {
                          return b.first < a.first; // decreasing keys
                      });
            q_->insert_batch(buf_.data(), buf_.size());
            buf_.clear();
        }

        bool refill() {
            const std::size_t pc =
                q_->peek_depth_.load(std::memory_order_relaxed);
            const std::size_t want = pc > 0 ? pc : 1;
            K k;
            V v;
            while (cache_.size() < want && q_->try_delete_min(k, v))
                cache_.emplace_back(k, v);
            return !cache_.empty();
        }

        k_lsm *q_;
        std::vector<std::pair<K, V>> buf_;   // staged inserts, unordered
        std::vector<std::pair<K, V>> cache_; // popped keys, ascending
        std::size_t cache_head_ = 0;
    };

    handle get_handle() { return handle(*this); }

    /// Approximate size; the paper's size() is allowed to be off by up to
    /// rho, and this estimate additionally counts not-yet-compacted
    /// logically deleted entries.
    std::size_t size_hint() const {
        std::size_t total = shared_.item_count_estimate();
        dir_.for_each([&](std::uint32_t slot) {
            total += dist_[slot]->item_count_estimate();
        });
        return total;
    }

    /// Expose components for white-box tests and diagnostics.
    shared_lsm<K, V> &shared_component() { return shared_; }
    dist_lsm_local<K, V> &dist_component(std::uint32_t slot) {
        return *dist_[slot];
    }

    /// The placement every pool of this queue was constructed with.
    const mm::mem_placement &placement() const { return place_; }

    /// Aggregate allocation-placement telemetry over every pool (item
    /// pools, DistLSM block pools, shared-LSM block pools).  Counter
    /// reads are safe any time; `query_residency` additionally walks
    /// the backing regions through move_pages(2), which requires
    /// quiescence (call after workers have joined).
    mm::memory_stats memory_stats(bool query_residency = false) const {
        mm::memory_stats out;
        const bool query =
            query_residency && mm::residency_query_supported();
        for (const auto &d : dist_)
            d->collect_memory(out, query);
        shared_.collect_memory(out, query);
        out.resident_queried = query;
        return out;
    }

    /// Shrink every pool's cold storage right now (mm/reclaim/); no-op
    /// unless the queue was built with a shrink-enabled placement.
    /// PRECONDITION: no concurrent operations (workers joined) — the
    /// same quiescence memory_stats' residency walk requires.  Returns
    /// the number of page-release events.
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (const auto &d : dist_)
            released += d->quiescent_shrink();
        released += shared_.quiescent_shrink();
        KLSM_TRACE_EVENT(trace::kind::reclaim_shrink, 0, released);
        return released;
    }

private:
    bool spy(std::uint32_t slot) {
        // Bound the copy to k items (Section 4.2's space bound); always
        // allow at least one so spying makes progress for k == 0.
        const std::size_t k = k_.load(std::memory_order_relaxed);
        const std::size_t cap = k > 0 ? k : 1;
        // Random victim first (the paper's scheme), then one sweep over
        // all registered slots so a false return means every DistLSM was
        // observed empty — spurious failures stay possible but rare.
        const std::uint32_t victim = dir_.random_victim(slot);
        if (victim < max_registered_threads && victim != slot &&
            dist_[slot]->spy_from(*dist_[victim], cap)) {
            note(adapt::event::spy);
            return true;
        }
        const std::uint32_t n = dir_.size();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s = dir_.at(i);
            if (s != slot && s != victim &&
                dist_[slot]->spy_from(*dist_[s], cap)) {
                note(adapt::event::spy);
                return true;
            }
        }
        return false;
    }

    /// One predictable branch when no monitor is attached.
    void note(adapt::event e) {
        adapt::contention_monitor *m =
            monitor_.load(std::memory_order_relaxed);
        if (m)
            m->count(e);
    }

    void note_buffer_high_water() {
        const std::size_t total = buffer_total();
        std::size_t cur = max_buffer_seen_.load(std::memory_order_relaxed);
        while (total > cur && !max_buffer_seen_.compare_exchange_weak(
                                  cur, total, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
        }
    }

    /// Relaxed-atomic so the adaptive-k controller can retune a live
    /// queue; hot paths load it once per operation.
    std::atomic<std::size_t> k_;
    /// High-water mark of k_ (set_relaxation maintains it): the value
    /// rank bounds are computed from after an adaptive run.
    std::atomic<std::size_t> max_k_seen_;
    /// Handle insert-buffer depth, delete-side peek-cache depth, and the
    /// high-water mark of buffer_total() (see the knob accessors).
    std::atomic<std::size_t> ins_depth_{0};
    std::atomic<std::size_t> peek_depth_{0};
    std::atomic<std::size_t> max_buffer_seen_{0};
    /// Contention telemetry sink; null when no controller is attached.
    std::atomic<adapt::contention_monitor *> monitor_{nullptr};
    Lazy lazy_;
    mm::mem_placement place_;
    shared_lsm<K, V> shared_;
    std::unique_ptr<dist_lsm_local<K, V>> dist_[max_registered_threads];
    slot_directory dir_;
};

/// The standalone distributed LSM priority queue ("DLSM" in Figure 3):
/// the k-LSM without the shared component and without relaxation bounds —
/// purely local ordering semantics, maximal scalability.
template <typename K, typename V>
class dist_pq {
public:
    using key_type = K;
    using value_type = V;

    explicit dist_pq(mm::mem_placement place = {}) : place_(place) {
        for (auto &d : dist_)
            d = std::make_unique<dist_lsm_local<K, V>>(place);
    }

    dist_pq(const dist_pq &) = delete;
    dist_pq &operator=(const dist_pq &) = delete;

    void insert(const K &key, const V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_[slot]->insert(key, value, slot,
                            dist_lsm_local<K, V>::unbounded, no_lazy{},
                            [](block<K, V> *, std::uint32_t) {});
    }

    bool try_delete_min(K &key, V &value) {
        const std::uint32_t slot = dir_.register_self();
        dist_lsm_local<K, V> &mine = *dist_[slot];
        do {
            for (;;) {
                item_ref<K, V> cand = mine.find_min();
                if (cand.empty())
                    break;
                const V v = cand.it->value();
                if (cand.take()) {
                    key = cand.key;
                    value = v;
                    return true;
                }
            }
        } while (spy(slot));
        return false;
    }

    std::size_t size_hint() const {
        std::size_t total = 0;
        dir_.for_each([&](std::uint32_t slot) {
            total += dist_[slot]->item_count_estimate();
        });
        return total;
    }

    const mm::mem_placement &placement() const { return place_; }

    /// Aggregate pool telemetry; see k_lsm::memory_stats.
    mm::memory_stats memory_stats(bool query_residency = false) const {
        mm::memory_stats out;
        const bool query =
            query_residency && mm::residency_query_supported();
        for (const auto &d : dist_)
            d->collect_memory(out, query);
        out.resident_queried = query;
        return out;
    }

    /// See k_lsm::quiescent_shrink (same contract).
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (const auto &d : dist_)
            released += d->quiescent_shrink();
        return released;
    }

private:
    bool spy(std::uint32_t slot) {
        const std::uint32_t victim = dir_.random_victim(slot);
        if (victim < max_registered_threads && victim != slot &&
            dist_[slot]->spy_from(*dist_[victim],
                                  dist_lsm_local<K, V>::unbounded))
            return true;
        const std::uint32_t n = dir_.size();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s = dir_.at(i);
            if (s != slot && s != victim &&
                dist_[slot]->spy_from(*dist_[s],
                                      dist_lsm_local<K, V>::unbounded))
                return true;
        }
        return false;
    }

    mm::mem_placement place_;
    std::unique_ptr<dist_lsm_local<K, V>> dist_[max_registered_threads];
    slot_directory dir_;
};

} // namespace klsm
