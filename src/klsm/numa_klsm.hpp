#pragma once

// NUMA-sharded k-LSM: one complete k_lsm per NUMA node.
//
// The k-LSM's shared component serializes block-array publication through
// a single point; on a multi-socket machine every publication bounces the
// cache line across the interconnect.  Sharding by NUMA node keeps both
// the DistLSM spill traffic and the shared-LSM publication point
// node-local:
//
//   * insert routes to the caller's node shard (detected once per thread
//     slot via sched_getcpu and cached; re-checked cheaply on every
//     operation so migrated threads re-home),
//   * try_delete_min services the local shard first and, on a randomized
//     period (expected every `remote_poll_period` deletes), polls a
//     remote shard instead — chosen best-of-two over the fullest-shard
//     hint plus one distinct random remote (probe both, take from the
//     one with the smaller observed minimum), so no node's keys are
//     starved and cross-node skew stays bounded in practice at two
//     probes per poll,
//   * when the local shard looks empty the delete sweeps *all* shards,
//     preferring the shard whose observed minimum is smallest, so the
//     queue drains globally and a false return means every shard was
//     observed empty.
//
// Relaxation: each shard individually guarantees rank error
// rho_shard = T*k (Lemma 2, T = threads that touched that shard).  On
// the all-shard paths (the periodic poll and the local-miss sweep) the
// delete takes from the shard whose observed minimum is smallest, so at
// most rho_shard smaller keys hide in each shard and the composed bound
//
//     rho <= nodes * (T*k + k)          (numa_rank_error_bound)
//
// holds structurally.  A purely *local* delete between polls, however,
// trades that bound for locality: under adversarial routing (all small
// keys inserted on one node while another node's thread deletes
// locally) it can skip arbitrarily many remote keys.  Under balanced
// routing — the whole point of inserting node-locally — observed rank
// error stays far below the composed bound (the concurrent tests check
// this), but it is a design property of the workload, not a worst-case
// guarantee.  With one shard the structure degenerates to a plain
// k_lsm and the composed formula is simply Lemma 2 plus slack, so the
// quality harness enforces it as a hard invariant exactly then.
//
// On a single-node machine (or under the containers' topology fallback)
// there is exactly one shard and the structure behaves as a plain k_lsm
// with one extra branch per operation.

#include <atomic>
#include <cstdint>
#include <memory>

#include "klsm/k_lsm.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "topo/pinning.hpp"
#include "topo/topology.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace klsm {

/// Composed worst-case rank-error bound for a numa_klsm driven by the
/// quality harness (T = worker_threads + 1, see rank_error_bound).
inline std::uint64_t numa_rank_error_bound(std::uint32_t nodes,
                                           unsigned worker_threads,
                                           std::uint64_t k) {
    return static_cast<std::uint64_t>(nodes) *
           ((static_cast<std::uint64_t>(worker_threads) + 1) * k + k);
}

template <typename K, typename V, typename Lazy = no_lazy>
class numa_klsm {
public:
    using key_type = K;
    using value_type = V;

    /// Expected number of local deletes between two remote polls.
    static constexpr std::uint32_t remote_poll_period = 32;
    /// A thread refreshes the hot-shard hint every this many of its own
    /// inserts (see hot_shard_hint below).
    static constexpr std::uint32_t hint_update_period = 64;

    /// One shard per NUMA node of `t`; `k` is the per-shard relaxation.
    /// The topology reference must outlive the queue.  `alloc` is the
    /// page-placement policy for every shard's pools: under `bind` (or
    /// `firsttouch`) shard s's item and block pages target the NUMA
    /// node shard s serves, so a shard's blocks never live on a remote
    /// node's memory (ROADMAP "Per-node block pools").  `reclaim` and
    /// `huge_pages` ride into every shard's placement (src/mm/reclaim/,
    /// mm/placement.hpp).
    explicit numa_klsm(
        std::size_t k, const topo::topology &t = topo::topology::system(),
        Lazy lazy = {},
        mm::numa_alloc_policy alloc = mm::numa_alloc_policy::none,
        mm::reclaim_config reclaim = {}, bool huge_pages = false)
        : topo_(t), num_shards_(t.num_nodes() ? t.num_nodes() : 1),
          alloc_policy_(alloc) {
        shards_ = std::make_unique<std::unique_ptr<k_lsm<K, V, Lazy>>[]>(
            num_shards_);
        const auto &nodes = t.node_ids();
        for (std::uint32_t s = 0; s < num_shards_; ++s) {
            const std::uint32_t node =
                s < nodes.size() ? nodes[s] : s;
            shards_[s] = std::make_unique<k_lsm<K, V, Lazy>>(
                k, lazy,
                mm::mem_placement{alloc, node, huge_pages, reclaim});
        }
    }

    numa_klsm(const numa_klsm &) = delete;
    numa_klsm &operator=(const numa_klsm &) = delete;

    std::uint32_t num_shards() const { return num_shards_; }

    /// Largest current per-shard relaxation (shards may diverge when
    /// the adaptive controller runs one loop per shard).
    std::size_t relaxation() const {
        std::size_t k = 0;
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            if (shards_[s]->relaxation() > k)
                k = shards_[s]->relaxation();
        return k;
    }

    /// Set every shard's relaxation.  Per-shard control goes through
    /// shard(s).set_relaxation() instead — the adaptive runtime runs
    /// one controller per shard (see src/adapt/).
    void set_relaxation(std::size_t k) {
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            shards_[s]->set_relaxation(k);
    }

    /// Largest k any shard has ever run with; the composed rank bound
    /// after an adaptive run is nodes * (T + 1) * max_relaxation_seen()
    /// + nodes * max_relaxation_seen() (numa_rank_error_bound with this
    /// k).
    std::size_t max_relaxation_seen() const {
        std::size_t k = 0;
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            if (shards_[s]->max_relaxation_seen() > k)
                k = shards_[s]->max_relaxation_seen();
        return k;
    }

    /// Force the calling thread's home shard (dense node index).  Used
    /// by tests that model a multi-node machine on a single-node host,
    /// and by pinned runners that already know their node.  The pin is
    /// scoped to the calling thread's lifetime: when its slot is later
    /// recycled to another thread, the entry is detected as stale (slot
    /// generation mismatch) and re-derived from sched_getcpu.
    void set_home_shard(std::uint32_t shard) {
        home_entry &h = home_[thread_index()];
        h.generation = thread_generation();
        h.shard = shard % num_shards_;
        h.cpu.store(pinned_cpu, std::memory_order_relaxed);
    }

    void insert(const K &key, const V &value) {
        // Single shard (every single-node machine and container): skip
        // the home-shard bookkeeping so the structure really is a plain
        // k_lsm plus one branch.
        if (num_shards_ == 1) {
            shards_[0]->insert(key, value);
            return;
        }
        const std::uint32_t s = home_shard();
        shard(s).insert(key, value);
        maybe_update_hot_hint(s);
    }

    bool try_delete_min(K &key, V &value) {
        if (num_shards_ == 1)
            return shards_[0]->try_delete_min(key, value);
        const std::uint32_t local = home_shard();

        // Randomized periodic remote poll: expected once every
        // remote_poll_period deletes, drain a remote shard instead of
        // the local one.  Best-of-two (power of two choices): sample
        // two distinct remote shards and take from the one whose
        // observed minimum is smaller — near-optimal victim choice at
        // two probes instead of a full sweep, so the poll stays cheap
        // as the shard count grows.
        if (thread_rng().bounded(remote_poll_period) == 0 &&
            poll_remote_best_of_two(local, key, value))
            return true;

        if (shard(local).try_delete_min(key, value))
            return true;

        // Local shard observed empty: sweep everything, best shard
        // first, so false means all shards were observed empty.
        return take_from_best(key, value);
    }

    bool try_find_min(K &key, V &value) {
        bool found = false;
        K best_key{};
        V best_val{};
        for (std::uint32_t s = 0; s < num_shards_; ++s) {
            K k2;
            V v2;
            if (shard(s).try_find_min(k2, v2) &&
                (!found || k2 < best_key)) {
                best_key = k2;
                best_val = v2;
                found = true;
            }
        }
        if (found) {
            key = best_key;
            value = best_val;
        }
        return found;
    }

    std::size_t size_hint() const {
        std::size_t total = 0;
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            total += shards_[s]->size_hint();
        return total;
    }

    /// Shard by dense node index, for white-box tests and diagnostics.
    k_lsm<K, V, Lazy> &shard(std::uint32_t s) { return *shards_[s]; }

    /// The page-placement policy every shard's pools were built with.
    mm::numa_alloc_policy alloc_policy() const { return alloc_policy_; }

    /// Aggregate allocation-placement telemetry over every shard; see
    /// k_lsm::memory_stats for the quiescence requirement of
    /// `query_residency`.
    mm::memory_stats memory_stats(bool query_residency = false) const {
        mm::memory_stats out;
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            out.merge(shards_[s]->memory_stats(query_residency));
        return out;
    }

    /// See k_lsm::quiescent_shrink (same contract), over every shard.
    std::size_t quiescent_shrink() {
        std::size_t released = 0;
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            released += shards_[s]->quiescent_shrink();
        return released;
    }

    /// The shared fullest-shard hint (white-box test accessor): a
    /// relaxed atomic refreshed on the insert path — every
    /// hint_update_period inserts a thread compares its home shard's
    /// item-count estimate against the hinted shard's and publishes its
    /// own shard when fuller.  Racy by design: any shard index is a
    /// valid hint, and a stale one only costs poll quality, never
    /// correctness.
    std::uint32_t hot_shard_hint() const {
        return hot_shard_.load(std::memory_order_relaxed);
    }

    /// The periodic remote poll (public for white-box tests): probe the
    /// hot-shard hint (when it names a remote shard; a uniformly random
    /// remote otherwise) plus one distinct random remote, observe each
    /// one's relaxed minimum, and delete from the shard whose minimum
    /// is smaller.  Hint + random replaces the earlier random + random:
    /// the power-of-two-choices shape is kept, but the first probe is
    /// steered at the shard most likely to hold backlog, so drain polls
    /// stop missing the hot shard as the shard count grows.  Returns
    /// false when the sampled shards look empty or the take races; the
    /// caller falls back to its local shard and, on a local miss, to
    /// the best-of-all sweep, so a false return never loses a key.
    bool poll_remote_best_of_two(std::uint32_t local, K &key, V &value) {
        if (num_shards_ < 2)
            return false;
        const std::uint32_t remotes = num_shards_ - 1;
        // Dense remote index -> shard index, skipping the local shard.
        const auto nth_remote = [&](std::uint32_t r) {
            return r >= local ? r + 1 : r;
        };
        const std::uint32_t hint =
            hot_shard_.load(std::memory_order_relaxed);
        std::uint32_t ra; // dense remote index of the first probe
        if (hint < num_shards_ && hint != local)
            ra = hint > local ? hint - 1 : hint;
        else
            ra = static_cast<std::uint32_t>(
                thread_rng().bounded(remotes));
        std::uint32_t chosen = nth_remote(ra);
        K ka{};
        V va{};
        bool have = shards_[chosen]->try_find_min(ka, va);
        if (remotes >= 2) {
            auto rb = static_cast<std::uint32_t>(
                thread_rng().bounded(remotes - 1));
            if (rb >= ra)
                ++rb; // distinct second sample
            const std::uint32_t b = nth_remote(rb);
            K kb{};
            V vb{};
            if (shards_[b]->try_find_min(kb, vb) && (!have || kb < ka)) {
                chosen = b;
                have = true;
            }
        }
        return have && shards_[chosen]->try_delete_min(key, value);
    }

private:
    static constexpr std::uint32_t unknown_cpu = 0xffffffffu;
    /// Sentinel cpu meaning "shard was fixed via set_home_shard".
    static constexpr std::uint32_t pinned_cpu = 0xfffffffeu;

    /// Dense shard index of the calling thread, cached per thread slot
    /// and refreshed whenever the OS reports a different cpu.  A slot
    /// inherited from an exited thread (generation mismatch) is reset so
    /// a stale set_home_shard pin or cpu cache never routes the new
    /// thread.
    std::uint32_t home_shard() {
        home_entry &h = home_[thread_index()];
        const std::uint32_t gen = thread_generation();
        std::uint32_t cached = h.cpu.load(std::memory_order_relaxed);
        if (h.generation != gen) {
            h.generation = gen;
            cached = unknown_cpu;
        }
        if (cached == pinned_cpu)
            return h.shard;
        const auto cur = topo::current_cpu();
        const std::uint32_t cpu = cur ? *cur : 0;
        if (cpu != cached) {
            h.shard = topo_.node_index(topo_.node_of(cpu)) % num_shards_;
            h.cpu.store(cpu, std::memory_order_relaxed);
        }
        return h.shard;
    }

    /// Every hint_update_period of this thread's inserts, publish its
    /// home shard as the hot-shard hint if it looks fuller than the
    /// currently hinted shard.  The tick lives in the thread's own
    /// home_entry (no shared state on the common path); the comparison
    /// uses size_hint, which is O(registered threads) — amortized to
    /// noise by the period.
    void maybe_update_hot_hint(std::uint32_t s) {
        home_entry &h = home_[thread_index()];
        if (++h.insert_tick < hint_update_period)
            return;
        h.insert_tick = 0;
        const std::uint32_t cur = hot_shard_.load(std::memory_order_relaxed);
        if (cur == s)
            return;
        if (cur >= num_shards_ ||
            shards_[s]->size_hint() > shards_[cur]->size_hint())
            hot_shard_.store(s, std::memory_order_relaxed);
    }

    /// Probe every shard's relaxed minimum and delete from the best one;
    /// falls back to any non-empty shard if the chosen take races.
    bool take_from_best(K &key, V &value) {
        std::uint32_t best = num_shards_;
        K best_key{};
        for (std::uint32_t s = 0; s < num_shards_; ++s) {
            K k2;
            V v2;
            if (shards_[s]->try_find_min(k2, v2) &&
                (best == num_shards_ || k2 < best_key)) {
                best = s;
                best_key = k2;
            }
        }
        if (best < num_shards_ &&
            shards_[best]->try_delete_min(key, value))
            return true;
        // The observed-best take can fail under contention; sweep all
        // shards so a false return means a full empty observation.
        for (std::uint32_t s = 0; s < num_shards_; ++s)
            if (shards_[s]->try_delete_min(key, value))
                return true;
        return false;
    }

    /// Cache-line padded: adjacent slots are hot in different threads
    /// on every operation (home_shard refreshes cpu on migration), and
    /// false sharing here would reintroduce exactly the cross-thread
    /// line bouncing the sharding exists to avoid.
    struct alignas(cache_line_size) home_entry {
        std::atomic<std::uint32_t> cpu{unknown_cpu};
        std::uint32_t shard = 0;
        /// thread_generation() of the slot holder that wrote this entry;
        /// 0 (never a real generation) marks a fresh entry.
        std::uint32_t generation = 0;
        /// Owner-only insert counter driving the hot-shard hint cadence.
        /// Survives slot recycling uncorrected — that only shifts the
        /// next refresh, never routing.
        std::uint32_t insert_tick = 0;
    };

    const topo::topology &topo_;
    const std::uint32_t num_shards_;
    const mm::numa_alloc_policy alloc_policy_;
    std::unique_ptr<std::unique_ptr<k_lsm<K, V, Lazy>>[]> shards_;
    /// Fullest-shard hint for the remote poll; see hot_shard_hint().
    /// On its own cache line: hint stores would otherwise invalidate
    /// the line holding the read-only members above (topo_, shards_)
    /// that every insert/delete dereferences — reintroducing exactly
    /// the cross-core bouncing this class exists to avoid.
    alignas(cache_line_size) std::atomic<std::uint32_t> hot_shard_{0};
    home_entry home_[max_registered_threads];
};

} // namespace klsm
