#pragma once

// Capability concepts — the formal vocabulary for what each priority
// queue in this library can do, replacing the ad-hoc `if constexpr`
// member-detection that used to be scattered through klsm_bench,
// src/adapt/, and the memory/reclaim plumbing.
//
//   relaxed_priority_queue — the paper's external interface (Section 4):
//       insert always succeeds; try_delete_min returns a flag and may
//       fail spuriously on non-empty queues as long as a key is
//       eventually returned given enough attempts.
//   handle_pq            — exposes per-thread operation handles
//       (queue.get_handle() -> h.insert / h.try_delete_min / h.flush).
//       Handles may buffer: an insert is durable immediately but only
//       guaranteed *visible* to other threads after flush() (or handle
//       destruction, which flushes).  Structures without native handles
//       are adapted by `passthrough_handle` below, so harness loops
//       have exactly ONE code path.
//   dynamic_relaxation   — relaxation k is retunable online
//       (set_relaxation / max_relaxation_seen); what src/adapt/ drives.
//   dynamic_buffering    — per-thread handle buffer depth is retunable
//       online (set_buffer_depth / max_buffer_depth_seen); the adaptive
//       runtime's second knob beside k.
//   pool_backed          — owns mm/ pools: exposes allocation telemetry
//       (memory_stats) and quiescent page release (quiescent_shrink).
//   sharded              — composed of per-shard sub-queues addressable
//       as q.shard(s), s < q.num_shards() (numa_klsm).

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace klsm {

template <typename PQ>
concept relaxed_priority_queue = requires(PQ q, typename PQ::key_type k,
                                          typename PQ::value_type v) {
    q.insert(k, v);
    { q.try_delete_min(k, v) } -> std::same_as<bool>;
};

/// What a per-thread operation handle must offer.  A handle is owned by
/// exactly one thread and is not thread-safe; flush() publishes every
/// buffered effect (pending inserts become visible, cached-but-unserved
/// deletions are returned to the queue).
template <typename H, typename PQ>
concept operation_handle = requires(H h, typename PQ::key_type k,
                                    typename PQ::value_type v) {
    h.insert(k, v);
    { h.try_delete_min(k, v) } -> std::same_as<bool>;
    h.flush();
};

template <typename PQ>
concept handle_pq = relaxed_priority_queue<PQ> && requires(PQ q) {
    { q.get_handle() } -> operation_handle<PQ>;
};

template <typename PQ>
concept dynamic_relaxation = requires(PQ q, const PQ cq, std::size_t k) {
    { cq.relaxation() } -> std::convertible_to<std::size_t>;
    q.set_relaxation(k);
    { cq.max_relaxation_seen() } -> std::convertible_to<std::size_t>;
};

template <typename PQ>
concept dynamic_buffering = requires(PQ q, const PQ cq, std::size_t d) {
    { cq.buffer_depth() } -> std::convertible_to<std::size_t>;
    q.set_buffer_depth(d);
    { cq.max_buffer_depth_seen() } -> std::convertible_to<std::size_t>;
};

template <typename PQ>
concept pool_backed = requires(PQ q, const PQ cq) {
    cq.memory_stats(true);
    { q.quiescent_shrink() } -> std::convertible_to<std::size_t>;
};

template <typename PQ>
concept sharded = requires(PQ q, std::uint32_t s) {
    { q.num_shards() } -> std::convertible_to<std::uint32_t>;
    q.shard(s);
};

/// Zero-cost handle adaptor for structures without native handles: every
/// operation forwards directly, flush is a no-op (nothing is ever
/// buffered).  Lets `pq_handle` give harness loops one code path.
template <typename PQ>
class passthrough_handle {
public:
    using key_type = typename PQ::key_type;
    using value_type = typename PQ::value_type;

    explicit passthrough_handle(PQ &q) : q_(&q) {}

    void insert(const key_type &key, const value_type &value) {
        q_->insert(key, value);
    }
    bool try_delete_min(key_type &key, value_type &value) {
        return q_->try_delete_min(key, value);
    }
    void flush() {}

private:
    PQ *q_;
};

/// The one way harnesses obtain a per-thread handle: the queue's native
/// handle when it has one, the pass-through adaptor otherwise.  Call it
/// on the owning thread; the handle must not outlive the queue.
template <relaxed_priority_queue PQ>
auto pq_handle(PQ &q) {
    if constexpr (handle_pq<PQ>)
        return q.get_handle();
    else
        return passthrough_handle<PQ>(q);
}

} // namespace klsm
