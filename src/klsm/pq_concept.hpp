#pragma once

// The common interface every priority queue in this library satisfies —
// the paper's external interface (Section 4): insert always succeeds;
// try_delete_min returns a flag and may fail spuriously on non-empty
// queues as long as a key is eventually returned given enough attempts.

#include <concepts>

namespace klsm {

template <typename PQ>
concept relaxed_priority_queue = requires(PQ q, typename PQ::key_type k,
                                          typename PQ::value_type v) {
    q.insert(k, v);
    { q.try_delete_min(k, v) } -> std::same_as<bool>;
};

} // namespace klsm
