#pragma once

// Lazy deletion (paper Section 4.5).
//
//   "the priority queue can query whether an item needs to be deleted.
//    This can be performed whenever it is convenient for the priority
//    queue, which for the LSM is whenever items are copied into a new
//    block (deleted items do not need to be copied)"
//
// A lazy-deletion policy is a callable
//
//     bool operator()(const K &key, const item<K, V> *it) const
//
// returning true if the item is semantically dead and should be dropped
// the next time a block is rebuilt.  The queue then *takes* the item (so
// other references see it as logically deleted) and skips the copy.  The
// SSSP benchmark uses this to drop (distance, node) entries that have
// been superseded by a shorter distance, replacing an explicit
// decrease-key operation.
//
// A policy may additionally define `void dropped() const`, which the
// queue calls exactly once per item it lazily deletes (i.e. whenever its
// take CAS on the expired item succeeds).  Applications that count
// in-flight queue entries — like the SSSP driver's termination counter —
// need this notification to stay balanced.

#include "klsm/item.hpp"

namespace klsm {

/// Default policy: nothing is ever lazily deleted.  Stateless and
/// trivially inlined away.
struct no_lazy {
    template <typename K, typename V>
    constexpr bool operator()(const K &, const item<K, V> *) const {
        return false;
    }
};

} // namespace klsm
