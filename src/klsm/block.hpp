#pragma once

// Concurrent LSM block (paper Listing 1).
//
// A block is a sorted run of item references in *decreasing* key order
// (the block minimum sits at index filled-1, so it can be read and lazily
// trimmed in O(1)).  Blocks follow a strict ownership discipline that
// makes the lock-free algorithm tractable:
//
//   * A block is MUTABLE only between `reuse_begin()` and `seal()`, and
//     only by the single thread that acquired it from its pool.
//   * Once published (stored into a DistLSM's block array or referenced
//     by a published shared BlockArray), its entries are immutable.
//     The owner of a DistLSM block may still trim `filled` past logically
//     deleted trailing entries and lower `level` — both are benign for
//     concurrent readers (see dist_lsm.hpp).
//   * Blocks are never freed while the queue lives (type-stable pools);
//     they are recycled via `reuse_begin()`, which bumps a seqlock-style
//     generation counter.  Racy readers (spying threads, stale shared
//     snapshots) validate the generation after reading and discard torn
//     data; every intermediate state they can observe is memory-safe
//     because entry fields are individually atomic and item pointers are
//     themselves type-stable.
//
// Capacity is fixed at construction (2^capacity_pow entries); the logical
// `level` can be lowered below capacity_pow when logical deletions shrink
// a run (the paper's shrink(), without the copy).

#include <atomic>
#include <cassert>
#include <cstdint>

#include "klsm/item.hpp"
#include "klsm/lazy.hpp"
#include "mm/placement.hpp"
#include "util/bits.hpp"
#include "util/tabulation_hash.hpp"

namespace klsm {

/// Owner-side pool bookkeeping; see block_pool.hpp.
enum class block_state : std::uint8_t {
    free,      ///< recyclable by the owning pool
    held,      ///< owner is building into it / holds it in a snapshot
    published, ///< was pushed into the shared LSM; recyclable once it is
               ///< no longer referenced by the *current* shared array
};

template <typename K, typename V>
class block {
public:
    struct entry {
        std::atomic<item<K, V> *> it{nullptr};
        std::atomic<std::uint64_t> version{0};
        std::atomic<K> key{};
    };

    /// `place` governs where the entry array's pages live
    /// (mm/placement.hpp); the default is the historical plain heap
    /// allocation.
    explicit block(std::uint32_t capacity_pow,
                   const mm::mem_placement &place = {})
        : entries_(mm::placed_array<entry>::allocate(
              std::size_t{1} << capacity_pow, place)),
          capacity_pow_(capacity_pow), level_(capacity_pow) {}

    block(const block &) = delete;
    block &operator=(const block &) = delete;

    std::uint32_t capacity_pow() const { return capacity_pow_; }
    std::size_t capacity() const { return std::size_t{1} << capacity_pow_; }

    // ---- generation counter (spy validation) ----------------------------

    /// Begin recycling: bumps the generation to an odd value so racy
    /// readers can detect the mutation window, then resets content.
    void reuse_begin(std::uint32_t level) {
        assert(level <= capacity_pow_);
        const std::uint64_t s = seq_.load(std::memory_order_relaxed);
        assert((s & 1) == 0 && "reuse_begin on a block already mutating");
        seq_.store(s + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        filled_.store(0, std::memory_order_relaxed);
        level_.store(level, std::memory_order_relaxed);
        bloom_.store(0, std::memory_order_relaxed);
    }

    /// End of the mutation window; content becomes immutable.
    void seal() {
        std::atomic_thread_fence(std::memory_order_release);
        const std::uint64_t s = seq_.load(std::memory_order_relaxed);
        assert((s & 1) == 1 && "seal without reuse_begin");
        seq_.store(s + 1, std::memory_order_release);
    }

    std::uint64_t generation() const {
        return seq_.load(std::memory_order_acquire);
    }

    // ---- building (owner, inside the mutation window) --------------------

    /// Append one reference if its item is still alive (Listing 1's
    /// append: "Only copy items that are not logically deleted") and not
    /// lazily expired (Section 4.5: expired items are taken and dropped
    /// at copy time instead of being copied).
    /// Returns true if appended.  Caller appends in decreasing key order.
    template <typename Lazy = no_lazy>
    bool append(const item_ref<K, V> &ref, const Lazy &lazy = {}) {
        if (ref.it == nullptr || !ref.it->is_alive(ref.version))
            return false;
        if (lazy(ref.key, ref.it)) {
            // Expired: logically delete so every other reference agrees,
            // then drop.  A failed take means someone else deleted it
            // (or dropped it), so the notification fires exactly once
            // per item — applications (e.g. SSSP termination counting)
            // rely on that.
            if (ref.it->take(ref.version)) {
                if constexpr (requires { lazy.dropped(); })
                    lazy.dropped();
            }
            return false;
        }
        const std::uint32_t f = filled_.load(std::memory_order_relaxed);
        assert(f < capacity());
        entries_[f].it.store(ref.it, std::memory_order_relaxed);
        entries_[f].version.store(ref.version, std::memory_order_relaxed);
        entries_[f].key.store(ref.key, std::memory_order_relaxed);
        filled_.store(f + 1, std::memory_order_relaxed);
        return true;
    }

    /// Copy the alive prefix [0, src_filled) of `src` (Listing 1's copy).
    template <typename Lazy = no_lazy>
    void copy_from(const block &src, std::uint32_t src_filled,
                   const Lazy &lazy = {}) {
        const std::uint32_t n =
            src_filled < src.capacity() ? src_filled
                                        : static_cast<std::uint32_t>(src.capacity());
        for (std::uint32_t i = 0; i < n; ++i)
            append(src.load_entry(i), lazy);
        bloom_or(src.bloom_raw());
    }

    /// Two-way merge of `a[0, a_filled)` and `b[0, b_filled)` (Listing 1's
    /// merge_in), dropping logically deleted items and OR-ing the thread
    /// Bloom filters.
    template <typename Lazy = no_lazy>
    void merge_from(const block &a, std::uint32_t a_filled, const block &b,
                    std::uint32_t b_filled, const Lazy &lazy = {}) {
        std::uint32_t i = 0, j = 0;
        const std::uint32_t na =
            a_filled < a.capacity() ? a_filled
                                    : static_cast<std::uint32_t>(a.capacity());
        const std::uint32_t nb =
            b_filled < b.capacity() ? b_filled
                                    : static_cast<std::uint32_t>(b.capacity());
        while (i < na && j < nb) {
            item_ref<K, V> ea = a.load_entry(i);
            item_ref<K, V> eb = b.load_entry(j);
            // Decreasing order: emit the larger key first.
            if (eb.key < ea.key) {
                append(ea, lazy);
                ++i;
            } else {
                append(eb, lazy);
                ++j;
            }
        }
        for (; i < na; ++i)
            append(a.load_entry(i), lazy);
        for (; j < nb; ++j)
            append(b.load_entry(j), lazy);
        bloom_or(a.bloom_raw());
        bloom_or(b.bloom_raw());
    }

    /// Racy copy used by DistLSM::spy.  Returns false (content must be
    /// discarded) if the victim block was recycled while copying.
    bool spy_copy_from(const block &victim) {
        const std::uint64_t g1 = victim.generation();
        if (g1 & 1)
            return false; // mid-mutation
        std::uint32_t n = victim.filled();
        if (n > victim.capacity())
            return false; // torn read from a recycled block
        if (n > capacity())
            n = static_cast<std::uint32_t>(capacity());
        for (std::uint32_t i = 0; i < n; ++i)
            append(victim.load_entry(i));
        bloom_or(victim.bloom_raw());
        std::atomic_thread_fence(std::memory_order_acquire);
        return victim.seq_.load(std::memory_order_relaxed) == g1;
    }

    // ---- reading ---------------------------------------------------------

    item_ref<K, V> load_entry(std::uint32_t i) const {
        item_ref<K, V> ref;
        ref.it = entries_[i].it.load(std::memory_order_relaxed);
        ref.version = entries_[i].version.load(std::memory_order_relaxed);
        ref.key = entries_[i].key.load(std::memory_order_relaxed);
        return ref;
    }

    std::uint32_t filled() const {
        return filled_.load(std::memory_order_relaxed);
    }

    std::uint32_t level() const {
        return level_.load(std::memory_order_relaxed);
    }

    /// Smallest alive entry at or below index `upto - 1`, scanning from
    /// the block minimum upwards past logically deleted entries.  Returns
    /// an empty ref if everything in [0, upto) is dead.  Read-only: safe
    /// on any published block.
    item_ref<K, V> peek_min(std::uint32_t upto) const {
        if (upto > capacity())
            upto = static_cast<std::uint32_t>(capacity());
        for (std::uint32_t i = upto; i-- > 0;) {
            item_ref<K, V> ref = load_entry(i);
            if (ref.it != nullptr && ref.it->is_alive(ref.version))
                return ref;
        }
        return {};
    }

    /// Number of alive entries in [0, upto) (O(upto); used by
    /// consolidation decisions and tests).
    std::uint32_t count_alive(std::uint32_t upto) const {
        if (upto > capacity())
            upto = static_cast<std::uint32_t>(capacity());
        std::uint32_t n = 0;
        for (std::uint32_t i = 0; i < upto; ++i) {
            item_ref<K, V> ref = load_entry(i);
            if (ref.it != nullptr && ref.it->is_alive(ref.version))
                ++n;
        }
        return n;
    }

    // ---- owner-side maintenance (DistLSM blocks only) --------------------

    /// Trim trailing logically deleted entries by decrementing `filled`,
    /// and lower `level` accordingly (Listing 1's shrink, without the
    /// copy: capacity stays, the logical level drops).  Only the owning
    /// thread may call this, and only on blocks it published in its own
    /// DistLSM; concurrent spies tolerate the shrinking `filled`.
    void trim_owner() {
        std::uint32_t f = filled_.load(std::memory_order_relaxed);
        while (f > 0) {
            item_ref<K, V> ref = load_entry(f - 1);
            if (ref.it != nullptr && ref.it->is_alive(ref.version))
                break;
            --f;
        }
        filled_.store(f, std::memory_order_relaxed);
        std::uint32_t lvl = level_.load(std::memory_order_relaxed);
        while (lvl > 0 && f <= (std::uint32_t{1} << (lvl - 1)))
            --lvl;
        level_.store(lvl, std::memory_order_relaxed);
    }

    /// Recompute the logical level from an externally tracked fill count
    /// (owner, pre-publication).
    static std::uint32_t level_for(std::uint32_t filled) {
        if (filled <= 1)
            return 0;
        return log2_ceil(filled);
    }

    void set_level(std::uint32_t level) {
        assert(level <= capacity_pow_);
        level_.store(level, std::memory_order_relaxed);
    }

    // ---- thread Bloom filter (local ordering semantics) -------------------

    void bloom_insert(std::uint32_t thread_id) {
        bloom_.store(bloom_raw() | bloom_mask(thread_id),
                     std::memory_order_relaxed);
    }

    void bloom_or(std::uint64_t bits) {
        bloom_.store(bloom_raw() | bits, std::memory_order_relaxed);
    }

    std::uint64_t bloom_raw() const {
        return bloom_.load(std::memory_order_relaxed);
    }

    /// May `thread_id` have contributed an item to this block?  False
    /// negatives never happen on stable blocks, which is what the local
    /// ordering argument requires.
    bool bloom_may_contain(std::uint32_t thread_id) const {
        const std::uint64_t m = bloom_mask(thread_id);
        return (bloom_raw() & m) == m;
    }

    static std::uint64_t bloom_mask(std::uint32_t thread_id) {
        return (std::uint64_t{1} << (thread_hash_a()(thread_id) & 63)) |
               (std::uint64_t{1} << (thread_hash_b()(thread_id) & 63));
    }

    // ---- pool bookkeeping (owner thread only) ----------------------------

    block_state pool_state() const { return pool_state_; }
    void set_pool_state(block_state s) { pool_state_ = s; }

    /// Shrink-tier bookkeeping (owner/quiescent only): true while the
    /// entry array's pages have been returned to the OS
    /// (mm/reclaim/shrink.hpp).  The mapping itself stays valid; the
    /// zeroed entries read as (it=nullptr, version=0), which every
    /// reader already treats as an empty slot.  The block object — and
    /// with it the seqlock generation and capacity — lives outside the
    /// entry storage, so spy validation is untouched.
    bool entries_released() const { return entries_released_; }
    void set_entries_released(bool v) { entries_released_ = v; }

    /// The entry array's backing storage, for placement telemetry
    /// (byte footprint, how it was placed, residency-query region).
    const mm::placed_array<entry> &entry_storage() const {
        return entries_;
    }

private:
    mm::placed_array<entry> entries_;
    const std::uint32_t capacity_pow_;
    std::atomic<std::uint32_t> level_;
    std::atomic<std::uint32_t> filled_{0};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> bloom_{0};
    block_state pool_state_ = block_state::free;
    bool entries_released_ = false;
};

} // namespace klsm
