#pragma once

// Per-thread, type-stable block recycling pools (paper Section 4.4):
//
//   "It is guaranteed that no thread will need more than four instances
//    of Block per level at any point in time, which will be allocated on
//    first access."
//
// Each thread owns one pool per queue.  Blocks are never freed while the
// queue lives; they cycle through the states free -> held -> (published ->)
// free.  Whether a published block may be recycled is decided by a caller-
// supplied predicate:
//
//   * DistLSM blocks: the owner knows exactly when a block leaves its
//     block array, so it releases blocks explicitly (state goes free).
//   * Shared-LSM blocks: other threads' consolidations drop blocks from
//     the published array, so the owner cannot observe unpublication.
//     Instead, `acquire` re-checks candidates against the *current*
//     shared BlockArray: once a block is absent from the current array it
//     can never be re-published (a snapshot containing it could only be
//     pushed by a CAS whose expected value is an array that still
//     references it), so absence is a stable reclamation criterion.
//
// We allocate four blocks per level eagerly on first use of a level, per
// the paper's bound, but allow the pool to grow as a safety valve — an
// extra allocation is strictly better than an unbounded search or a
// corruption if the bound were ever exceeded by a code path we reasoned
// about incorrectly.  Growth is counted so tests can assert the paper's
// bound actually holds.

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "klsm/block.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "mm/reclaim/shrink.hpp"
#include "trace/tracer.hpp"

namespace klsm {

template <typename K, typename V>
class block_pool {
public:
    static constexpr std::uint32_t max_levels = 32;
    static constexpr std::size_t blocks_per_level = 4;

    /// `place` governs where every block's entry pages live
    /// (mm/placement.hpp); the default is the historical plain heap
    /// allocation.
    explicit block_pool(mm::mem_placement place = {}) : place_(place) {}
    block_pool(const block_pool &) = delete;
    block_pool &operator=(const block_pool &) = delete;

    /// Acquire a block with capacity 2^capacity_pow, begin its mutation
    /// window at logical level `level` (<= capacity_pow).
    /// `may_recycle(b)` decides whether a block in `published` state has
    /// become reclaimable; pass `always_recyclable` for DistLSM pools.
    template <typename Pred>
    block<K, V> *acquire(std::uint32_t capacity_pow, std::uint32_t level,
                         Pred &&may_recycle) {
        assert(capacity_pow < max_levels);
        auto &bucket = buckets_[capacity_pow];
        bool allocated = false;
        if (bucket.empty()) {
            bucket.reserve(blocks_per_level);
            for (std::size_t i = 0; i < blocks_per_level; ++i)
                push_new_block(bucket, capacity_pow);
            allocated = true;
        }
        block<K, V> *found = nullptr;
        for (auto &b : bucket) {
            switch (b->pool_state()) {
            case block_state::free:
                found = b.get();
                break;
            case block_state::published:
                if (may_recycle(b.get()))
                    found = b.get();
                break;
            case block_state::held:
                break;
            }
            if (found)
                break;
        }
        if (!found) {
            // Safety valve; see header comment.
            push_new_block(bucket, capacity_pow);
            found = bucket.back().get();
            allocated = true;
            stats_.count_growth();
        }
        if (allocated)
            stats_.count_fresh();
        else
            stats_.count_reuse_hit();
        if (found->entries_released()) {
            // A shrink released this block's entry pages; they refault
            // (zeroed) as the new mutation window writes them.
            found->set_entries_released(false);
            stats_.count_reactivate(found->entry_storage().bytes());
        }
        found->set_pool_state(block_state::held);
        found->reuse_begin(level);
        return found;
    }

    /// Predicate for pools whose published blocks are tracked explicitly
    /// by the owner (never used in `published` state).
    static bool always_recyclable(block<K, V> *) { return true; }

    /// Owner finished building and did NOT publish the block (or removed
    /// it from its own DistLSM): recycle immediately.
    void release(block<K, V> *b) {
        if ((b->generation() & 1) != 0)
            b->seal();
        b->set_pool_state(block_state::free);
    }

    /// Owner published the block into the shared LSM; it becomes
    /// reclaimable only via the `may_recycle` predicate.
    void mark_published(block<K, V> *b) {
        b->set_pool_state(block_state::published);
    }

    /// Number of allocations beyond the paper's four-per-level bound
    /// (tests assert this stays 0 for DistLSM usage).
    std::size_t overflow_allocations() const {
        return stats_.growth_beyond_bound.load(std::memory_order_relaxed);
    }

    /// Total blocks currently allocated (test/diagnostic helper).
    std::size_t total_blocks() const {
        std::size_t n = 0;
        for (const auto &bucket : buckets_)
            n += bucket.size();
        return n;
    }

    /// Allocation-placement telemetry (owner increments, any thread may
    /// snapshot; see mm/alloc_stats.hpp).
    const mm::alloc_counters &stats() const { return stats_; }
    const mm::mem_placement &placement() const { return place_; }

    /// Return every free block's entry pages to the OS (the block
    /// objects and their mappings stay put — type stability holds, a
    /// later acquire refaults).  PRECONDITION: no concurrent operations
    /// on the owning queue (same contract as for_each_region).  Only
    /// page-managed entry storage of at least a page is eligible.
    /// Returns the number of blocks whose pages were released.
    std::size_t quiescent_shrink() {
        if (!place_.reclaim.shrink_enabled())
            return 0;
        std::size_t released = 0;
        for (auto &bucket : buckets_)
            for (auto &b : bucket) {
                if (b->pool_state() != block_state::free ||
                    b->entries_released())
                    continue;
                const auto &storage = b->entry_storage();
                if (!storage.page_managed() ||
                    storage.bytes() < mm::page_size())
                    continue;
                if (!mm::reclaim::release_pages(
                        const_cast<void *>(storage.region()),
                        storage.bytes()))
                    continue;
                b->set_entries_released(true);
                stats_.count_reclaim(storage.bytes());
                KLSM_TRACE_EVENT(trace::kind::reclaim_release, 0,
                                 storage.bytes());
                ++released;
            }
        return released;
    }

    /// Walk every block's page-managed entry region for the residency
    /// query; `none`-policy blocks are skipped (their entries share
    /// heap pages with unrelated allocations, so per-page attribution
    /// would double count).  Quiescent-only: buckets may grow under a
    /// concurrent acquire.
    template <typename F>
    void for_each_region(F &&f) const {
        for (const auto &bucket : buckets_)
            for (const auto &b : bucket) {
                const auto &storage = b->entry_storage();
                if (storage.page_managed())
                    f(storage.region(), storage.bytes());
            }
    }

private:
    void push_new_block(
        std::vector<std::unique_ptr<block<K, V>>> &bucket,
        std::uint32_t capacity_pow) {
        bucket.push_back(
            std::make_unique<block<K, V>>(capacity_pow, place_));
        const auto &storage = bucket.back()->entry_storage();
        stats_.count_chunk(storage.bytes(), storage.how_placed());
    }

    std::vector<std::unique_ptr<block<K, V>>> buckets_[max_levels];
    mm::mem_placement place_;
    mm::alloc_counters stats_;
};

} // namespace klsm
