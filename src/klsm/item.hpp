#pragma once

// Versioned items — the heart of the k-LSM's ABA-safe manual memory
// management (paper Section 4.4):
//
//   "Since the scheme is not ABA safe, we change the flag variable in Item
//    to an integer, which allows items to be marked as deleted in an
//    ABA-safe manner by incrementing flag with an atomic compare-and-swap.
//    Blocks store the expected flag value together with each pointer to
//    Item."
//
// An item's `version` is a monotonically increasing counter:
//   * odd  = alive (inserted, not yet deleted),
//   * even = free (never used, logically deleted, or awaiting reuse).
//
// Logical deletion ("take") is CAS(version, expected_odd, expected_odd+1).
// Reuse republishes payload and bumps the version to the next odd value.
// Because the counter never repeats, a stale (pointer, expected_version)
// pair held by any block anywhere in the system can never successfully
// take a reused item: the CAS simply fails.  Combined with type-stable
// item storage (items are never freed while the queue lives, see
// mm/item_pool.hpp), this makes every dereference safe and every stale
// reference harmless.
//
// Payload reads are validated seqlock-style *by the take CAS itself*: a
// reader loads the version (acquire), reads key/value, and then tries the
// CAS.  CAS success proves the version was still `expected` at that point,
// hence no reuse intervened, hence the payload read was the one published
// together with `expected`.

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "mm/reclaim/freelist.hpp"

namespace klsm {

template <typename K, typename V>
class item {
    static_assert(std::is_trivially_copyable_v<K> &&
                      std::is_trivially_copyable_v<V>,
                  "items hold their payload in relaxed atomics; keys and "
                  "values must be trivially copyable");

public:
    using key_type = K;
    using value_type = V;

    item() = default;
    item(const item &) = delete;
    item &operator=(const item &) = delete;

    /// Publish a new payload in a free item and return the new (odd)
    /// version.  May only be called by the pool that owns the item, on an
    /// item whose version is even.
    std::uint64_t publish(const K &key, const V &value) {
        key_.store(key, std::memory_order_relaxed);
        value_.store(value, std::memory_order_relaxed);
        const std::uint64_t v = version_.load(std::memory_order_relaxed) + 1;
        version_.store(v, std::memory_order_release);
        return v;
    }

    /// Logically delete: succeeds iff the version still equals `expected`.
    /// This is the linearization point of a successful delete-min.  The
    /// winning deleter — whichever thread it is — donates the dead item
    /// to the owning pool's freelist when the reclamation tier attached
    /// a sink (mm/reclaim/freelist.hpp); with the tier off the word is
    /// 0 and the only cost is one relaxed load and a branch.
    bool take(std::uint64_t expected) {
        if (!version_.compare_exchange_strong(expected, expected + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
            return false;
        const std::uintptr_t w = reclaim_.load(std::memory_order_acquire);
        if ((w & 1) != 0)
            reinterpret_cast<mm::reclaim::tagged_freelist<item> *>(w & ~std::uintptr_t{1})
                ->push(this);
        return true;
    }

    /// True if the item still carries version `expected` (i.e. the payload
    /// observed under that version is still live).
    bool is_alive(std::uint64_t expected) const {
        return version_.load(std::memory_order_acquire) == expected;
    }

    std::uint64_t version() const {
        return version_.load(std::memory_order_acquire);
    }

    /// An item is reusable by its pool iff its version is even.
    bool reusable() const {
        return (version_.load(std::memory_order_relaxed) & 1) == 0;
    }

    K key() const { return key_.load(std::memory_order_relaxed); }
    V value() const { return value_.load(std::memory_order_relaxed); }

    /// The reclamation word (see mm/reclaim/freelist.hpp for the value
    /// space).  Exposed for the freelist's linkage protocol.
    std::atomic<std::uintptr_t> &reclaim_word() { return reclaim_; }

    /// Attach (or clear, with 0) the owning pool's freelist sink.
    /// Owner-only, and only while the item is not freelist-linked.
    void attach_reclaim_sink(std::uintptr_t sink_word) {
        reclaim_.store(sink_word, std::memory_order_release);
    }

    /// True if the item is currently linked into its freelist — the
    /// sweep must skip such items (the freelist pop will hand them out).
    bool freelist_linked() const {
        return mm::reclaim::tagged_freelist<item>::is_linked_word(
            reclaim_.load(std::memory_order_relaxed));
    }

    /// Owner-only, quiescent-only: reinitialize an item whose chunk was
    /// madvise'd away (storage zeroed).  `even_floor` must be even and
    /// >= every version the item ever held, so global version
    /// monotonicity — the ABA defense — survives the zeroing.
    void reset_after_reclaim(std::uint64_t even_floor,
                             std::uintptr_t sink_word) {
        version_.store(even_floor, std::memory_order_release);
        reclaim_.store(sink_word, std::memory_order_release);
    }

private:
    std::atomic<std::uint64_t> version_{0};
    std::atomic<K> key_{};
    std::atomic<V> value_{};
    std::atomic<std::uintptr_t> reclaim_{0};
};

/// A (pointer, expected-version) pair — what blocks actually store.  The
/// key is cached alongside so ordering decisions never chase the item
/// pointer; a stale cached key can only misdirect a take that the version
/// check then rejects.
template <typename K, typename V>
struct item_ref {
    item<K, V> *it = nullptr;
    std::uint64_t version = 0;
    K key{};

    bool empty() const { return it == nullptr; }
    bool alive() const { return it != nullptr && it->is_alive(version); }
    bool take() const { return it->take(version); }
};

} // namespace klsm
