#pragma once

// Distributed LSM priority queue component (paper Section 4.2, Listing 4).
//
// One `dist_lsm_local` per thread slot.  Only the owning thread mutates
// its instance ("owner" operations); other threads read it exclusively
// through `spy_from`, which is non-destructive: it *copies* item
// references out of a victim's blocks, validating the blocks' generation
// counters afterwards, and never removes anything from the victim.  This
// preserves the victim's local ordering semantics.
//
// Synchronization discipline:
//   * blocks_[] and size_ are atomics only so spies can read them racily;
//     every owner mutation keeps the structure permanently memory-safe
//     (type-stable blocks, null checks, level bounds), and spies discard
//     logically torn copies via block generation validation.
//   * During an insert's merge chain, all pre-existing blocks stay
//     published until the merged block is written (Listing 4: "Old blocks
//     stay available throughout the loop"), so every alive item is
//     continuously reachable — the insert linearizes at the final slot
//     store (Lemma 1).
//   * The combined k-LSM bounds each DistLSM to at most `spill_bound`
//     items; when an insert would exceed the bound, the entire contents
//     are merged into a single block and handed to the spill callback
//     (which publishes it in the shared k-LSM) before the local blocks
//     are retired, so reachability is again continuous.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>

#include "klsm/block.hpp"
#include "klsm/block_pool.hpp"
#include "klsm/item.hpp"
#include "klsm/lazy.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/item_pool.hpp"
#include "mm/placement.hpp"
#include "trace/tracer.hpp"

namespace klsm {

template <typename K, typename V>
class dist_lsm_local {
public:
    static constexpr std::uint32_t max_levels = block_pool<K, V>::max_levels;
    static constexpr std::size_t unbounded =
        std::numeric_limits<std::size_t>::max();

    /// `place` governs where this LSM's item and block pages live
    /// (mm/placement.hpp); numa_klsm passes each shard's node here.
    explicit dist_lsm_local(mm::mem_placement place = {})
        : pool_(place), items_(place) {}
    dist_lsm_local(const dist_lsm_local &) = delete;
    dist_lsm_local &operator=(const dist_lsm_local &) = delete;

    /// Owner: insert a key.  If the total number of items would exceed
    /// `spill_bound`, everything is merged into one block and passed to
    /// `spill(block*, filled)` instead of staying local.
    template <typename Lazy, typename Spill>
    void insert(const K &key, const V &value, std::uint32_t tid,
                std::size_t spill_bound, const Lazy &lazy, Spill &&spill) {
        item_ref<K, V> ref = items_.allocate(key, value);

        block<K, V> *b = pool_.acquire(0, 0, block_pool<K, V>::always_recyclable);
        b->append(ref, lazy);
        b->bloom_insert(tid);
        publish_merge(b, tid, spill_bound, lazy,
                      std::forward<Spill>(spill));
    }

    /// Owner: insert `n` key/value pairs, pre-sorted in DECREASING key
    /// order, as ONE level-ceil(log2 n) block — the buffered handle's
    /// flush path.  The run enters the same merge chain a single insert
    /// would, but only once per batch, so the amortized per-item cost of
    /// the chain (and of any spill into the shared LSM) drops by a factor
    /// of n.  Lazy-expired pairs are dropped at append time exactly as a
    /// chain of single inserts would drop them.
    template <typename Lazy, typename Spill>
    void insert_batch(const std::pair<K, V> *kv, std::size_t n,
                      std::uint32_t tid, std::size_t spill_bound,
                      const Lazy &lazy, Spill &&spill) {
        if (n == 0)
            return;
        const std::uint32_t lvl =
            block<K, V>::level_for(static_cast<std::uint32_t>(n));
        assert(lvl < max_levels);
        block<K, V> *b =
            pool_.acquire(lvl, lvl, block_pool<K, V>::always_recyclable);
        for (std::size_t i = 0; i < n; ++i) {
            assert(i == 0 || !(kv[i - 1].first < kv[i].first));
            b->append(items_.allocate(kv[i].first, kv[i].second), lazy);
        }
        if (b->filled() == 0) { // lazy deletion expired the whole batch
            pool_.release(b);
            return;
        }
        b->set_level(block<K, V>::level_for(b->filled()));
        b->bloom_insert(tid);
        KLSM_TRACE_EVENT(trace::kind::dist_batch_flush, 0, b->filled());
        publish_merge(b, tid, spill_bound, lazy,
                      std::forward<Spill>(spill));
    }

private:
    /// Common insert tail: run the held block `b` through Listing 4's
    /// merge chain, apply the combined k-LSM spill bound, and publish.
    template <typename Lazy, typename Spill>
    void publish_merge(block<K, V> *b, std::uint32_t tid,
                       std::size_t spill_bound, const Lazy &lazy,
                       Spill &&spill) {
        (void)tid;
        KLSM_TRACE_SPAN(publish_span, trace::kind::dist_publish);
        const std::uint32_t old_size = size_.load(std::memory_order_relaxed);
        std::uint32_t i = old_size;
        // Listing 4's merge chain: merge from the back while the previous
        // block's level does not exceed the new block's level.
        while (i > 0) {
            block<K, V> *prev = blocks_[i - 1].load(std::memory_order_relaxed);
            if (prev->level() > b->level())
                break;
            b = merge_replacing(prev, b, lazy);
            --i;
        }
        publish_span.arg(trace::clamp16(old_size - i));

        // Combined k-LSM spill check (Section 4.3): bound the DistLSM to
        // `spill_bound` items in total.
        if (spill_bound != unbounded) {
            std::size_t total = b->filled();
            for (std::uint32_t j = 0; j < i; ++j)
                total += blocks_[j].load(std::memory_order_relaxed)->filled();
            if (total > spill_bound) {
                // Merge the remaining larger blocks in as well, then hand
                // the whole batch to the shared LSM.
                while (i > 0) {
                    block<K, V> *prev =
                        blocks_[i - 1].load(std::memory_order_relaxed);
                    b = merge_replacing(prev, b, lazy);
                    --i;
                }
                if ((b->generation() & 1) != 0)
                    b->seal();
                publish_span.arg(trace::clamp16(old_size));
                KLSM_TRACE_EVENT(trace::kind::dist_spill, b->level(),
                                 b->filled());
                spill(b, b->filled());
                // The spilled block is now reachable via the shared LSM;
                // retire every local block (their items live on in b's
                // copy) and the batch block itself.  The chain's merged_
                // bookkeeping covers a subset of these blocks, so it is
                // cleared rather than released separately.
                size_.store(0, std::memory_order_release);
                for (std::uint32_t j = 0; j < old_size; ++j) {
                    block<K, V> *old =
                        blocks_[j].load(std::memory_order_relaxed);
                    blocks_[j].store(nullptr, std::memory_order_relaxed);
                    if (old != nullptr)
                        pool_.release(old);
                }
                pool_.release(b);
                merged_count_ = 0;
                return;
            }
        }

        if ((b->generation() & 1) != 0)
            b->seal();
        // Publish: slot first, then size (Listing 4's order); spies may
        // transiently see an item twice, which the paper permits.
        blocks_[i].store(b, std::memory_order_release);
        size_.store(i + 1, std::memory_order_release);
        // Retire the blocks the chain replaced (indices i+1 .. old_size-1
        // plus the one previously at index i).
        for (std::uint32_t j = 0; j < merged_count_; ++j)
            pool_.release(merged_[j]);
        merged_count_ = 0;
        for (std::uint32_t j = i + 1; j < old_size; ++j)
            blocks_[j].store(nullptr, std::memory_order_relaxed);
    }

public:
    /// Owner: current minimum alive item (empty ref if none).  Trims
    /// logically deleted suffixes and repairs structural invariants as a
    /// side effect (the paper's consolidate).
    template <typename Lazy = no_lazy>
    item_ref<K, V> find_min(const Lazy &lazy = {}) {
        item_ref<K, V> best{};
        const std::uint32_t n = size_.load(std::memory_order_relaxed);
        bool structural = false;
        std::uint32_t prev_level = std::numeric_limits<std::uint32_t>::max();
        for (std::uint32_t j = 0; j < n; ++j) {
            block<K, V> *b = blocks_[j].load(std::memory_order_relaxed);
            b->trim_owner();
            if (b->filled() == 0) {
                structural = true;
                continue;
            }
            if (b->level() >= prev_level)
                structural = true;
            prev_level = b->level();
            item_ref<K, V> ref = b->peek_min(b->filled());
            if (!ref.empty() && (best.empty() || ref.key < best.key))
                best = ref;
        }
        if (structural)
            consolidate(lazy);
        return best;
    }

    /// Owner: re-establish "non-empty blocks in strictly decreasing level
    /// order" (Listing 4's consolidate).
    template <typename Lazy = no_lazy>
    void consolidate(const Lazy &lazy = {}) {
        const std::uint32_t n = size_.load(std::memory_order_relaxed);
        block<K, V> *live[max_levels];
        std::uint32_t m = 0;
        block<K, V> *drop[max_levels];
        std::uint32_t dropped = 0;
        for (std::uint32_t j = 0; j < n; ++j) {
            block<K, V> *b = blocks_[j].load(std::memory_order_relaxed);
            if (b == nullptr)
                continue;
            b->trim_owner();
            if (b->filled() == 0)
                drop[dropped++] = b;
            else
                live[m++] = b;
        }
        // Merge adjacent blocks violating strictly-decreasing levels.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t j = 1; j < m; ++j) {
                if (live[j - 1]->level() <= live[j]->level()) {
                    block<K, V> *merged =
                        merge_pair(live[j - 1], live[j], lazy);
                    drop[dropped++] = live[j - 1];
                    drop[dropped++] = live[j];
                    live[j - 1] = merged;
                    for (std::uint32_t t = j + 1; t < m; ++t)
                        live[t - 1] = live[t];
                    --m;
                    changed = true;
                    break;
                }
            }
        }
        // Publish the compacted array (merged blocks are already sealed
        // and hold every alive item of the blocks they replace).
        for (std::uint32_t j = 0; j < m; ++j)
            blocks_[j].store(live[j], std::memory_order_release);
        size_.store(m, std::memory_order_release);
        for (std::uint32_t j = m; j < n; ++j)
            blocks_[j].store(nullptr, std::memory_order_relaxed);
        for (std::uint32_t j = 0; j < dropped; ++j)
            pool_.release(drop[j]);
    }

    /// Owner: copy up to `max_items` item references out of `victim`
    /// (Listing 4's spy).  Non-destructive; returns true if anything was
    /// copied.  Precondition: this LSM is empty.
    bool spy_from(dist_lsm_local &victim, std::size_t max_items) {
        // The caller observed this LSM empty via find_min, but a take()
        // by another thread can race between find_min's trim and peek,
        // so blocks of logically dead items (or even a still-alive item)
        // may remain.  Re-establish physical emptiness; if an alive item
        // survives consolidation, refuse to spy — overwriting the block
        // array would leak the blocks and break the level-order
        // invariant.  The caller treats false as "re-read the queue"
        // (spurious failure is allowed by the interface).
        if (size_.load(std::memory_order_relaxed) != 0) {
            consolidate();
            if (size_.load(std::memory_order_relaxed) != 0)
                return false;
        }
        std::uint32_t vsize = victim.size_.load(std::memory_order_acquire);
        if (vsize > max_levels)
            return false; // torn read
        std::uint32_t my_n = 0;
        std::uint32_t last_level = std::numeric_limits<std::uint32_t>::max();
        std::size_t copied = 0;
        for (std::uint32_t j = 0; j < vsize && copied < max_items; ++j) {
            block<K, V> *vb = victim.blocks_[j].load(std::memory_order_acquire);
            if (vb == nullptr)
                continue;
            const std::uint32_t lvl = vb->level(); // racy; validated below
            if (lvl >= max_levels || lvl >= last_level)
                continue; // keep strictly decreasing levels (Listing 4)
            block<K, V> *nb = pool_.acquire(
                lvl, lvl, block_pool<K, V>::always_recyclable);
            if (nb->spy_copy_from(*vb) && nb->filled() > 0) {
                const std::uint32_t new_level =
                    block<K, V>::level_for(nb->filled());
                if (new_level >= last_level) {
                    pool_.release(nb);
                    continue;
                }
                nb->set_level(new_level);
                nb->seal();
                blocks_[my_n].store(nb, std::memory_order_release);
                last_level = new_level;
                copied += nb->filled();
                ++my_n;
            } else {
                pool_.release(nb);
            }
        }
        size_.store(my_n, std::memory_order_release);
        return my_n > 0;
    }

    /// Conservative item count (counts logically deleted items that
    /// have not been trimmed yet).  Callable by ANY thread, not just
    /// the owner: k_lsm::size_hint and numa_klsm's hot-shard hint read
    /// other threads' LSMs through it mid-run, so the loads are
    /// acquire — they synchronize with the owner's release publication
    /// of each block, which happens after the block's construction and
    /// seal.  Torn values (a block being concurrently reused) only
    /// skew the estimate, never safety: blocks are type-stable and
    /// `filled` is atomic.
    std::size_t item_count_estimate() const {
        std::size_t total = 0;
        const std::uint32_t n = size_.load(std::memory_order_acquire);
        for (std::uint32_t j = 0; j < n && j < max_levels; ++j) {
            const block<K, V> *b = blocks_[j].load(std::memory_order_acquire);
            if (b != nullptr)
                total += b->filled();
        }
        return total;
    }

    bool empty_hint() const {
        return size_.load(std::memory_order_relaxed) == 0;
    }

    block_pool<K, V> &pool() { return pool_; }
    item_pool<K, V> &items() { return items_; }
    const mm::mem_placement &placement() const {
        return pool_.placement();
    }

    /// Fold this LSM's pool telemetry into `out`; with
    /// `query_residency`, also walk the backing regions through the
    /// move_pages query (quiescent-only — call after workers joined).
    void collect_memory(mm::memory_stats &out, bool query_residency) const {
        out.items.merge(items_.stats().snapshot());
        out.dist_blocks.merge(pool_.stats().snapshot());
        if (query_residency) {
            items_.for_each_region([&](const void *p, std::size_t bytes) {
                mm::query_resident_nodes(p, bytes, out.items_resident);
            });
            pool_.for_each_region([&](const void *p, std::size_t bytes) {
                mm::query_resident_nodes(p, bytes,
                                         out.dist_blocks_resident);
            });
        }
    }

    /// Release every cold chunk/block of this LSM's pools right now
    /// (mm/reclaim/).  PRECONDITION: no concurrent operations on the
    /// queue — same contract as the residency walk above.  Returns the
    /// number of page-release events.
    std::size_t quiescent_shrink() {
        return items_.quiescent_shrink() + pool_.quiescent_shrink();
    }

private:
    /// Merge `prev` (published) with `b` (held, created this operation)
    /// into a freshly acquired block; releases `b`.  `prev` stays
    /// published — the caller retires it after the final slot store.
    template <typename Lazy>
    block<K, V> *merge_replacing(block<K, V> *prev, block<K, V> *b,
                                 const Lazy &lazy) {
        const std::uint32_t cap =
            (prev->level() > b->level() ? prev->level() : b->level()) + 1;
        block<K, V> *nb =
            pool_.acquire(cap, cap, block_pool<K, V>::always_recyclable);
        nb->merge_from(*prev, prev->filled(), *b, b->filled(), lazy);
        nb->set_level(block<K, V>::level_for(nb->filled()));
        nb->seal();
        pool_.release(b);
        assert(merged_count_ < max_levels);
        merged_[merged_count_++] = prev;
        return nb;
    }

    /// Merge two published blocks into a new held block (consolidate).
    template <typename Lazy>
    block<K, V> *merge_pair(block<K, V> *a, block<K, V> *c,
                            const Lazy &lazy) {
        const std::uint32_t cap =
            (a->level() > c->level() ? a->level() : c->level()) + 1;
        block<K, V> *nb =
            pool_.acquire(cap, cap, block_pool<K, V>::always_recyclable);
        nb->merge_from(*a, a->filled(), *c, c->filled(), lazy);
        nb->set_level(block<K, V>::level_for(nb->filled()));
        nb->seal();
        return nb;
    }

    std::atomic<block<K, V> *> blocks_[max_levels] = {};
    std::atomic<std::uint32_t> size_{0};

    // Published blocks replaced by the current insert's merge chain; they
    // must stay reachable until the merged block is published, then they
    // are released in one batch.
    block<K, V> *merged_[max_levels];
    std::uint32_t merged_count_ = 0;

    block_pool<K, V> pool_;
    item_pool<K, V> items_;
};

} // namespace klsm
