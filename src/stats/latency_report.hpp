#pragma once

// JSON serialization of merged latency histograms: the `latency` object
// every klsm_bench record carries when sampling is enabled.
//
// Schema (documented in README "Latency metrics"):
//
//   "latency": {
//     "unit": "ns",
//     "sample_stride": 4,
//     "sub_bucket_bits": 5,
//     "insert":     { "count": ..., "mean": ..., "min": ..., "p50": ...,
//                     "p90": ..., "p99": ..., "p999": ..., "max": ...,
//                     "dropped_intervals": ...,
//                     "buckets": [[index, count], ...] },
//     "delete_min": { ... same shape ... }
//   }
//
// `dropped_intervals` counts samples that exceeded 10x the recorder's
// running p99 estimate — the coordinated-omission tell: each such stall
// suppressed op issue, so the histogram under-weights it (see
// latency_recorder.hpp).
//
// Percentiles are precomputed for at-a-glance reading; the sparse
// `buckets` array is the ground truth — with `sub_bucket_bits` it fully
// determines the bucket edges (latency_histogram.hpp's bucket_lower/
// bucket_upper), so offline tooling (scripts/compare_bench.py among
// them) can re-aggregate, re-percentile, or merge across records
// without C++.

#include <sstream>
#include <string>

#include "stats/latency_histogram.hpp"
#include "stats/latency_recorder.hpp"

namespace klsm {
namespace stats {

/// One op's stats as a JSON object string.
inline std::string latency_op_json(const latency_histogram &h,
                                   std::uint64_t dropped_intervals = 0) {
    std::ostringstream os;
    os << "{\"count\":" << h.count();
    os << ",\"mean\":" << h.mean();
    os << ",\"min\":" << h.min();
    os << ",\"p50\":" << h.percentile(50);
    os << ",\"p90\":" << h.percentile(90);
    os << ",\"p99\":" << h.percentile(99);
    os << ",\"p999\":" << h.percentile(99.9);
    os << ",\"max\":" << h.max();
    os << ",\"dropped_intervals\":" << dropped_intervals;
    os << ",\"buckets\":[";
    bool first = true;
    h.for_each_nonempty([&](std::size_t i, std::uint64_t c) {
        os << (first ? "" : ",") << "[" << i << "," << c << "]";
        first = false;
    });
    os << "]}";
    return os.str();
}

/// The full `latency` object for one benchmark record.
inline std::string latency_json(const latency_recorder_set &recs) {
    std::ostringstream os;
    os << "{\"unit\":\"ns\",\"sample_stride\":" << recs.stride()
       << ",\"sub_bucket_bits\":" << latency_histogram::sub_bits;
    for (unsigned op = 0; op < op_kinds; ++op) {
        const auto kind = static_cast<op_kind>(op);
        os << ",\"" << op_name(kind) << "\":"
           << latency_op_json(recs.merged(kind),
                              recs.dropped_intervals(kind));
    }
    os << "}";
    return os.str();
}

} // namespace stats
} // namespace klsm
