#pragma once

// HDR-style log-linear latency histogram.
//
// "Benchmarking Concurrent Priority Queues" (arXiv:1603.05047) makes the
// case that mean throughput hides exactly the effects that distinguish
// relaxed designs; what is needed is the full per-operation latency
// distribution.  Recording every sample exactly is too expensive on a
// hot path, so we use the standard HDR compromise: bucket values so that
// every bucket's width is a fixed *fraction* of its lower edge, giving a
// bounded relative error (2^-SubBits, ~3% at the default precision)
// across the whole 1ns..100s range with ~1k fixed-size buckets.
//
// Layout (log-linear, the HdrHistogram scheme):
//   - values < 2^(SubBits+1) get exact width-1 buckets (the linear head);
//   - above that, each power-of-two octave is split into 2^SubBits
//     sub-buckets of width 2^(octave - SubBits).
// The layout is a pure function of SubBits, so histograms with the same
// precision merge by adding bucket counts — no rebinning, no iteration
// order concerns.  That is what makes per-thread recording + end-of-run
// merge cheap and exact (see latency_recorder.hpp).
//
// The histogram itself is NOT thread-safe: one writer per instance.
// Sharing is handled a level up by giving each thread its own instance.

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bits.hpp"

namespace klsm {
namespace stats {

/// Log-linear histogram over [0, max_trackable] with relative bucket
/// error bounded by 2^-SubBits.  Tracks exact count/sum/min/max beside
/// the buckets so mean and extremes never suffer bucketing error.
template <unsigned SubBits = 5>
class basic_latency_histogram {
    static_assert(SubBits >= 1 && SubBits <= 12,
                  "SubBits outside the sensible precision range");

public:
    using count_type = std::uint64_t;

    static constexpr unsigned sub_bits = SubBits;
    static constexpr std::uint64_t sub_count = std::uint64_t{1} << SubBits;

    /// 100 seconds in nanoseconds: the top of the trackable range.
    /// Anything slower than that is a hang, not a latency.
    static constexpr std::uint64_t max_trackable = 100'000'000'000ull;

    /// Index of the highest bucket group (one group per octave above the
    /// linear head).
    static constexpr unsigned max_group =
        log2_floor(max_trackable) - SubBits + 1;

    static constexpr std::size_t bucket_count =
        (static_cast<std::size_t>(max_group) + 1) * sub_count;

    // -- bucket layout (static; shared by recorders, tests, tooling) ----

    /// Bucket index for value `v` (saturates at max_trackable).
    static constexpr std::size_t bucket_index(std::uint64_t v) {
        if (v > max_trackable)
            v = max_trackable;
        if (v < 2 * sub_count)
            return static_cast<std::size_t>(v); // linear head, width 1
        const unsigned octave = log2_floor(v);
        const unsigned shift = octave - SubBits;
        return (static_cast<std::size_t>(shift + 1) << SubBits) +
               static_cast<std::size_t>((v >> shift) & (sub_count - 1));
    }

    /// Smallest value mapping to bucket `i`.
    static constexpr std::uint64_t bucket_lower(std::size_t i) {
        const std::size_t group = i >> SubBits;
        if (group == 0)
            return i;
        const unsigned shift = static_cast<unsigned>(group - 1);
        const std::uint64_t sub = i & (sub_count - 1);
        return (sub_count + sub) << shift;
    }

    /// Largest value mapping to bucket `i`.
    static constexpr std::uint64_t bucket_upper(std::size_t i) {
        const std::size_t group = i >> SubBits;
        if (group == 0)
            return i;
        const unsigned shift = static_cast<unsigned>(group - 1);
        return bucket_lower(i) + (std::uint64_t{1} << shift) - 1;
    }

    // -- recording ------------------------------------------------------

    void record(std::uint64_t v) {
        ++buckets_[bucket_index(v)];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
        if (v < min_)
            min_ = v;
    }

    /// Add `other`'s counts into this histogram (same layout by type).
    void merge(const basic_latency_histogram &other) {
        for (std::size_t i = 0; i < bucket_count; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
        if (other.count_ && other.min_ < min_)
            min_ = other.min_;
    }

    void reset() { *this = basic_latency_histogram{}; }

    // -- extraction -----------------------------------------------------

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    bool empty() const { return count_ == 0; }

    double mean() const {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /// Value at percentile `p` in [0, 100]: the upper edge of the bucket
    /// holding the sample of rank ceil(p/100 * count), clamped to the
    /// observed max so p100 is exact.  Returns 0 on an empty histogram.
    std::uint64_t percentile(double p) const {
        if (count_ == 0)
            return 0;
        if (p <= 0.0)
            return min();
        std::uint64_t rank = static_cast<std::uint64_t>(
            p / 100.0 * static_cast<double>(count_) + 0.5);
        if (rank < 1)
            rank = 1;
        if (rank > count_)
            rank = count_;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < bucket_count; ++i) {
            seen += buckets_[i];
            if (seen >= rank) {
                const std::uint64_t upper = bucket_upper(i);
                // The bucket spanning max_trackable absorbs every
                // saturated sample, whose true value may exceed its
                // edge: the exact recorded max is all we know there.
                if (upper >= max_trackable)
                    return max_;
                return upper < max_ ? upper : max_;
            }
        }
        return max_; // unreachable when counts are consistent
    }

    count_type bucket(std::size_t i) const { return buckets_[i]; }

    /// Visit non-empty buckets as (index, count) — the sparse form the
    /// JSON report exports so offline tooling can re-aggregate.
    template <typename Fn>
    void for_each_nonempty(Fn &&fn) const {
        for (std::size_t i = 0; i < bucket_count; ++i)
            if (buckets_[i])
                fn(i, buckets_[i]);
    }

private:
    std::array<count_type, bucket_count> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
};

/// The repo-wide default precision: 32 sub-buckets per octave, ~3%
/// relative error, 1056 buckets (~8.25 KiB) per histogram.
using latency_histogram = basic_latency_histogram<5>;

} // namespace stats
} // namespace klsm
