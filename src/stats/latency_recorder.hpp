#pragma once

// Per-thread latency recording with stride sampling.
//
// The record path must not perturb the benchmark it measures, so the
// design is share-nothing: each worker owns a cache-line-aligned slot
// holding one histogram per operation kind plus its sampling countdown.
// Recording touches only that slot — no atomics, no shared cache lines —
// and the per-run cost is two `now_ns()` stamps on every stride'th
// operation.  A merge step at the end of the run (single-threaded, after
// the workers have joined) folds the slots into one histogram per op.
//
// Stride semantics: stride N samples every Nth *attempted* operation of
// that kind (1 = every op, 0 = recording disabled and the fast path
// collapses to one branch).  Sampling by stride rather than by clock
// keeps the decision allocation-free and deterministic per thread.

#include <cstdint>
#include <vector>

#include "stats/latency_histogram.hpp"
#include "util/align.hpp"
#include "util/timer.hpp"

namespace klsm {
namespace stats {

/// The two operation kinds every harness distinguishes.  Kept as an enum
/// (not a string) so the record path indexes an array.
enum class op_kind : unsigned { insert = 0, delete_min = 1 };
inline constexpr unsigned op_kinds = 2;

inline const char *op_name(op_kind op) {
    return op == op_kind::insert ? "insert" : "delete_min";
}

/// One worker's private recording slot.  Aligned so adjacent slots never
/// share a cache line (the histograms are KiB-sized, so only the edges
/// could ever collide — alignment removes even those).
struct alignas(cache_line_size) thread_latency_slot {
    latency_histogram hist[op_kinds];
    std::uint64_t countdown[op_kinds] = {1, 1};

    /// Decide whether this op should be stamped; called once per op with
    /// the set's stride.  Advances the stride phase either way.
    bool should_sample(op_kind op, std::uint64_t stride) {
        auto &cd = countdown[static_cast<unsigned>(op)];
        if (--cd != 0)
            return false;
        cd = stride;
        return true;
    }

    void record(op_kind op, std::uint64_t ns) {
        hist[static_cast<unsigned>(op)].record(ns);
    }
};

/// A set of per-thread slots for one benchmark run.  Construct before
/// the workers start, hand worker t `slot(t)`, merge after they join.
class latency_recorder_set {
public:
    /// `stride` 0 disables recording entirely (enabled() is false and
    /// no slots are allocated).
    explicit latency_recorder_set(unsigned threads, std::uint64_t stride)
        : stride_(stride), slots_(stride ? threads : 0) {}

    bool enabled() const { return stride_ != 0; }
    std::uint64_t stride() const { return stride_; }
    unsigned threads() const {
        return static_cast<unsigned>(slots_.size());
    }

    thread_latency_slot &slot(unsigned t) { return slots_[t]; }

    /// Fold all per-thread histograms for `op` into one.  Exact: the
    /// bucket layout is shared, so merge is bucket-wise addition.
    latency_histogram merged(op_kind op) const {
        latency_histogram out;
        for (const auto &s : slots_)
            out.merge(s.hist[static_cast<unsigned>(op)]);
        return out;
    }

private:
    std::uint64_t stride_;
    std::vector<thread_latency_slot> slots_;
};

/// Stamp-and-record helper for harness loops: constructed per operation
/// from the (possibly null) recorder set the caller was handed, samples
/// iff the slot's stride countdown fires, records on commit().  Kept
/// trivial so the disabled path is one predictable branch.
class op_sample {
public:
    op_sample(latency_recorder_set *set, unsigned thread, op_kind op) {
        if (set && set->enabled()) {
            auto &slot = set->slot(thread);
            if (slot.should_sample(op, set->stride())) {
                slot_ = &slot;
                op_ = op;
                start_ns_ = now_ns();
            }
        }
    }

    /// Record the elapsed time; call only when the operation counts
    /// (e.g. skip failed delete-mins so the distribution is over real
    /// operations, not empty-queue probes).
    void commit() {
        if (slot_)
            slot_->record(op_, now_ns() - start_ns_);
    }

private:
    thread_latency_slot *slot_ = nullptr;
    op_kind op_ = op_kind::insert;
    std::uint64_t start_ns_ = 0;
};

} // namespace stats
} // namespace klsm
