#pragma once

// Per-thread latency recording with stride sampling.
//
// The record path must not perturb the benchmark it measures, so the
// design is share-nothing: each worker owns a cache-line-aligned slot
// holding one histogram per operation kind plus its sampling countdown.
// Recording touches only that slot — no atomics, no shared cache lines —
// and the per-run cost is two `now_ns()` stamps on every stride'th
// operation.  A merge step at the end of the run (single-threaded, after
// the workers have joined) folds the slots into one histogram per op.
//
// Stride semantics: stride N samples every Nth *attempted* operation of
// that kind (1 = every op, 0 = recording disabled and the fast path
// collapses to one branch).  Sampling by stride rather than by clock
// keeps the decision allocation-free and deterministic per thread.
//
// Coordinated omission: stride sampling under-weights stalls, because
// an operation stuck behind a stall suppresses the issue of the
// operations that would have been sampled during it.  Rather than
// synthesizing the missing samples (which would need an intended-rate
// model the harnesses don't have), each slot keeps a cheap streaming
// p99 estimate per op kind and counts every sample exceeding 10x that
// estimate as a `dropped_intervals` event — so stalls are at least
// visible in the report even though the histogram under-weights them.

#include <cstdint>
#include <vector>

#include "stats/latency_histogram.hpp"
#include "util/align.hpp"
#include "util/timer.hpp"

namespace klsm {
namespace stats {

/// The two operation kinds every harness distinguishes.  Kept as an enum
/// (not a string) so the record path indexes an array.
enum class op_kind : unsigned { insert = 0, delete_min = 1 };
inline constexpr unsigned op_kinds = 2;

inline const char *op_name(op_kind op) {
    return op == op_kind::insert ? "insert" : "delete_min";
}

/// One worker's private recording slot.  Aligned so adjacent slots never
/// share a cache line (the histograms are KiB-sized, so only the edges
/// could ever collide — alignment removes even those).
struct alignas(cache_line_size) thread_latency_slot {
    latency_histogram hist[op_kinds];
    std::uint64_t countdown[op_kinds] = {1, 1};
    /// Streaming p99 estimate (stochastic approximation: +99 units on
    /// a sample above, -1 unit on one below, no move on a tie, with
    /// unit ~ estimate/8192 — balanced when ~1% of samples land
    /// above), used only to flag stalls — the histogram holds the
    /// exact p99.
    std::uint64_t p99_estimate[op_kinds] = {0, 0};
    /// Samples exceeding stall_factor x the p99 estimate: the visible
    /// trace of coordinated omission (see the header comment).
    std::uint64_t dropped_intervals[op_kinds] = {0, 0};

    /// A sample this many times the running p99 estimate counts as a
    /// stall, once `stall_warmup` samples have seeded the estimate.
    static constexpr std::uint64_t stall_factor = 10;
    static constexpr std::uint64_t stall_warmup = 16;

    /// Decide whether this op should be stamped; called once per op with
    /// the set's stride.  Advances the stride phase either way.
    bool should_sample(op_kind op, std::uint64_t stride) {
        auto &cd = countdown[static_cast<unsigned>(op)];
        if (--cd != 0)
            return false;
        cd = stride;
        return true;
    }

    void record(op_kind op, std::uint64_t ns) {
        const unsigned i = static_cast<unsigned>(op);
        std::uint64_t &est = p99_estimate[i];
        if (hist[i].count() >= stall_warmup && est > 0 &&
            ns > stall_factor * est)
            ++dropped_intervals[i];
        if (est == 0) {
            est = ns > 0 ? ns : 1; // seed from the first sample
        } else if (hist[i].count() < stall_warmup) {
            // Warmup: move halfway toward each sample.  Outlier-robust
            // in both directions — a one-off stall as the seed decays
            // geometrically instead of wedging the estimate high, and
            // a single fast sample shifts it by at most half instead
            // of collapsing it (which would flag the ordinary bulk as
            // phantom stalls).  The stochastic approximation refines
            // from this median-ish start after warmup.
            est = (est + (ns > 0 ? ns : 1)) / 2;
        } else if (ns > est) {
            // 99:1 up/down asymmetry in integer units so the ratio
            // survives small estimates (a fractional down-step would
            // round up to the up-step's size below a few us); ties
            // move nothing, so a constant stream holds steady.
            est += 99 * ((est >> 13) + 1);
        } else if (ns < est) {
            const std::uint64_t unit = (est >> 13) + 1;
            est = est > unit ? est - unit : 1;
        }
        hist[i].record(ns);
    }
};

/// A set of per-thread slots for one benchmark run.  Construct before
/// the workers start, hand worker t `slot(t)`, merge after they join.
class latency_recorder_set {
public:
    /// `stride` 0 disables recording entirely (enabled() is false and
    /// no slots are allocated).
    explicit latency_recorder_set(unsigned threads, std::uint64_t stride)
        : stride_(stride), slots_(stride ? threads : 0) {}

    bool enabled() const { return stride_ != 0; }
    std::uint64_t stride() const { return stride_; }
    unsigned threads() const {
        return static_cast<unsigned>(slots_.size());
    }

    thread_latency_slot &slot(unsigned t) { return slots_[t]; }

    /// Direct record path for harnesses that stamp their own intervals —
    /// the open-loop service harness records intended-start latency,
    /// whose start is a schedule entry, not a now_ns() taken here (see
    /// op_sample for the stamp-it-yourself case).  Honors the set's
    /// stride exactly like op_sample: every call advances the phase,
    /// every stride'th call records.
    void record(unsigned t, op_kind op, std::uint64_t ns) {
        if (!enabled())
            return;
        auto &s = slot(t);
        if (s.should_sample(op, stride_))
            s.record(op, ns);
    }

    /// Fold all per-thread histograms for `op` into one.  Exact: the
    /// bucket layout is shared, so merge is bucket-wise addition.
    latency_histogram merged(op_kind op) const {
        latency_histogram out;
        for (const auto &s : slots_)
            out.merge(s.hist[static_cast<unsigned>(op)]);
        return out;
    }

    /// Total stall events for `op` across all slots (see
    /// thread_latency_slot::dropped_intervals).
    std::uint64_t dropped_intervals(op_kind op) const {
        std::uint64_t total = 0;
        for (const auto &s : slots_)
            total += s.dropped_intervals[static_cast<unsigned>(op)];
        return total;
    }

private:
    std::uint64_t stride_;
    std::vector<thread_latency_slot> slots_;
};

/// Stamp-and-record helper for harness loops: constructed per operation
/// from the (possibly null) recorder set the caller was handed, samples
/// iff the slot's stride countdown fires, records on commit().  Kept
/// trivial so the disabled path is one predictable branch.
class op_sample {
public:
    op_sample(latency_recorder_set *set, unsigned thread, op_kind op) {
        if (set && set->enabled()) {
            auto &slot = set->slot(thread);
            if (slot.should_sample(op, set->stride())) {
                slot_ = &slot;
                op_ = op;
                start_ns_ = now_ns();
            }
        }
    }

    /// Record the elapsed time; call only when the operation counts
    /// (e.g. skip failed delete-mins so the distribution is over real
    /// operations, not empty-queue probes).
    void commit() {
        if (slot_)
            slot_->record(op_, now_ns() - start_ns_);
    }

private:
    thread_latency_slot *slot_ = nullptr;
    op_kind op_ = op_kind::insert;
    std::uint64_t start_ns_ = 0;
};

} // namespace stats
} // namespace klsm
