#pragma once

// Parallel discrete-event simulation (PHOLD-style self-messaging) —
// the application workload where a relaxed delete_min is not merely
// wasted work but a *causality violation*.
//
// The model: `lps` logical processes, each with a monotone virtual
// clock, and a fixed population of in-flight events.  A worker pops
// the (globally) earliest event (timestamp, lp), commits it against
// the target LP's clock, and schedules one successor at a random LP a
// random virtual-time increment in the future — so the event
// population is constant and the queue is always `population` deep,
// exactly the regime where relaxation pays on throughput.
//
// Commit-time causality check: optimistic PDES engines tolerate
// out-of-order execution up to the model's lookahead (the minimum
// timestamp increment any event can add).  An event whose timestamp
// is more than `lookahead` behind its LP's clock would have had to be
// rolled back; we count it as a violation instead of simulating
// rollback, so the scalar "events/sec at a violation budget" directly
// prices the k-induced reordering.  With an exact queue and one
// worker the count is provably zero; it grows with k because the
// queue's rank error bounds how far behind the global frontier a
// popped event can be.

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "klsm/pq_concept.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "trace/progress.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"
#include "util/timer.hpp"

namespace klsm::workloads {

struct des_params {
    /// Logical processes (each carries one atomic virtual clock).
    std::uint32_t lps = 256;
    /// In-flight event population, seeded before the run and kept
    /// constant by self-messaging.
    std::uint32_t population = 4096;
    /// Stop after this many committed events (total across threads).
    std::uint64_t target_events = 200000;
    /// Model lookahead in virtual time: the minimum increment every
    /// scheduled successor adds, and symmetrically the commit-lag an
    /// LP tolerates before counting a causality violation.
    std::uint64_t lookahead = 0;
    /// Mean of the uniform random part of the timestamp increment.
    std::uint64_t mean_delay = 64;

    unsigned threads = 4;
    std::uint64_t seed = 1;
    std::vector<std::uint32_t> pin_cpus;
    stats::latency_recorder_set *latency = nullptr;
    std::function<void()> on_adapt_tick;
    double adapt_tick_s = 0.005;
    trace::progress_counters *progress = nullptr;
};

struct des_result {
    std::uint64_t committed = 0;
    std::uint64_t scheduled = 0;
    /// Events that arrived more than `lookahead` behind their LP's
    /// clock — work an optimistic simulator would roll back.
    std::uint64_t violations = 0;
    /// Worst observed commit lag beyond the lookahead, in virtual time.
    std::uint64_t max_lag = 0;
    /// Highest virtual timestamp committed (simulation horizon reached).
    std::uint64_t virtual_time = 0;
    std::uint64_t failed_pops = 0;
    std::uint64_t pin_failures = 0;
    double elapsed_s = 0;

    double events_per_sec() const {
        return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s
                             : 0;
    }
    double violation_fraction() const {
        return committed > 0
                   ? static_cast<double>(violations) / committed
                   : 0;
    }
};

/// Run the PHOLD model on an empty queue (uint64 keys = timestamps,
/// uint64 values = LP ids) until `target_events` commits.
template <typename PQ>
des_result run_des(PQ &q, const des_params &params) {
    check_thread_capacity(params.threads);
    std::vector<std::atomic<std::uint64_t>> clocks(params.lps);
    for (auto &c : clocks)
        c.store(0, std::memory_order_relaxed);

    // Seed the fixed event population before the clock starts.
    {
        xoroshiro128 rng{params.seed};
        auto h = pq_handle(q);
        for (std::uint32_t i = 0; i < params.population; ++i)
            h.insert(1 + rng.bounded(2 * params.mean_delay + 1),
                     rng.bounded(params.lps));
        h.flush();
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> committed{0}, scheduled{0}, violations{0};
    std::atomic<std::uint64_t> max_lag{0}, virtual_time{0};
    std::atomic<std::uint64_t> failed{0}, pin_failures{0};
    std::barrier sync{static_cast<std::ptrdiff_t>(params.threads) + 1};
    wall_timer timer;

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < params.threads; ++t) {
        pool.emplace_back([&, t] {
            if (!params.pin_cpus.empty() &&
                !topo::pin_self(
                    params.pin_cpus[t % params.pin_cpus.size()]))
                pin_failures.fetch_add(1, std::memory_order_relaxed);
            xoroshiro128 rng{params.seed + 104729 * (t + 1)};
            auto h = pq_handle(q);
            trace::progress_counters *const prog = params.progress;
            std::uint64_t my_committed = 0, my_scheduled = 0;
            std::uint64_t my_violations = 0, my_failed = 0;
            std::uint64_t my_max_lag = 0, my_vt = 0;
            sync.arrive_and_wait();
            std::uint64_t ts, lp;
            while (!stop.load(std::memory_order_relaxed)) {
                bool ok;
                {
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::delete_min};
                    ok = h.try_delete_min(ts, lp);
                    if (ok)
                        sample.commit();
                }
                if (!ok) {
                    ++my_failed;
                    // The population is constant, so a failed pop means
                    // events are sitting in handle buffers; publish ours
                    // so the simulation cannot wedge.
                    h.flush();
                    continue;
                }
                // Commit: check causality against the LP's clock, then
                // advance it to this event's timestamp.
                auto &clock = clocks[lp % params.lps];
                std::uint64_t seen = clock.load(std::memory_order_acquire);
                const std::uint64_t lag = seen > ts ? seen - ts : 0;
                if (lag > params.lookahead) {
                    ++my_violations;
                    my_max_lag =
                        std::max(my_max_lag, lag - params.lookahead);
                }
                while (seen < ts &&
                       !clock.compare_exchange_weak(
                           seen, ts, std::memory_order_acq_rel))
                    ;
                my_vt = std::max(my_vt, ts);
                ++my_committed;
                KLSM_TRACE_EVENT(trace::kind::des_commit, lp, lag);
                const std::uint64_t done =
                    committed.fetch_add(1, std::memory_order_relaxed) + 1;
                if (done >= params.target_events) {
                    stop.store(true, std::memory_order_relaxed);
                    break;
                }
                // Self-message: one successor keeps the population
                // constant.  Every increment is at least lookahead+1,
                // which is what makes `lookahead` the model's true
                // causality tolerance.
                const std::uint64_t next_ts =
                    ts + params.lookahead + 1 +
                    rng.bounded(2 * params.mean_delay + 1);
                {
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::insert};
                    h.insert(next_ts, rng.bounded(params.lps));
                    sample.commit();
                }
                ++my_scheduled;
                if (prog != nullptr)
                    prog->publish(t, my_committed + my_scheduled,
                                  my_failed);
            }
            h.flush();
            // `committed` is already global (the stop check needs it
            // live); merge the rest of the thread-local tallies.
            scheduled.fetch_add(my_scheduled);
            violations.fetch_add(my_violations);
            failed.fetch_add(my_failed);
            std::uint64_t cur = max_lag.load(std::memory_order_relaxed);
            while (my_max_lag > cur &&
                   !max_lag.compare_exchange_weak(cur, my_max_lag))
                ;
            cur = virtual_time.load(std::memory_order_relaxed);
            while (my_vt > cur &&
                   !virtual_time.compare_exchange_weak(cur, my_vt))
                ;
        });
    }

    periodic_ticker ticker{params.on_adapt_tick, params.adapt_tick_s};
    timer.reset();
    sync.arrive_and_wait();
    for (auto &th : pool)
        th.join();

    des_result out;
    out.elapsed_s = timer.elapsed_s();
    out.committed = committed.load();
    out.scheduled = scheduled.load();
    out.violations = violations.load();
    out.max_lag = max_lag.load();
    out.virtual_time = virtual_time.load();
    out.failed_pops = failed.load();
    out.pin_failures = pin_failures.load();
    return out;
}

} // namespace klsm::workloads
