#pragma once

// Best-first 0/1-knapsack branch-and-bound — the application workload
// where queue *ordering quality* becomes end-to-end runtime.  A
// relaxed delete_min hands a worker a less-promising subproblem: still
// correct (bounding prunes it eventually) but potentially wasted work,
// so the expanded-node count and the time until the incumbent reaches
// the known optimum measure what the rank-error microbenches can't.
//
// Promoted from examples/branch_and_bound.cpp with two changes that
// make it a harness citizen:
//
//   - subproblems are bit-packed into the queue's 64-bit value (depth |
//     remaining capacity | accumulated value) instead of indexing a
//     mutex-guarded arena, so the workload measures the queue rather
//     than a side lock;
//   - termination is a work-stealing-free drain: `outstanding` counts
//     live subproblems (incremented before insert, decremented after a
//     pop is fully processed), and a worker whose pop fails flushes its
//     handle buffers — so buffered inserts can never deadlock the
//     drain — and exits once outstanding is 0 (the frontier is seeded
//     before the workers start, so 0 means the tree is exhausted).
//
// Instances are generated deterministically from a seed with
// uncorrelated weights and values: diverse subproblem values spread
// the frontier's bound spectrum, so there is a real band of
// prunable-but-queued nodes for a relaxed pop order to waste work on
// (correlated instances collapse that band — every completion lands
// within noise of the optimum and expansion counts go
// order-invariant).  The optimum is computed up front by dynamic
// programming over capacity, which gives every run a correctness
// check *and* an online time-to-optimum measurement.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "klsm/pq_concept.hpp"
#include "stats/latency_recorder.hpp"
#include "topo/pinning.hpp"
#include "trace/progress.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"
#include "util/ticker.hpp"
#include "util/timer.hpp"

namespace klsm::workloads {

struct knapsack_instance {
    std::vector<std::uint32_t> weight;
    std::vector<std::uint32_t> value;
    std::uint64_t capacity = 0;
    /// Item indices in decreasing density order (for the bound).
    std::vector<std::uint32_t> order;
    /// Dynamic-programming reference solution.
    std::uint64_t optimum = 0;

    std::uint32_t items() const {
        return static_cast<std::uint32_t>(weight.size());
    }
};

/// Subproblem state: items [0, depth) of the density order decided.
struct bnb_subproblem {
    std::uint32_t depth = 0;
    std::uint64_t remaining = 0;
    std::uint64_t value = 0;
};

// Bit layout of a subproblem in the queue's 64-bit value slot:
// depth in the low 16 bits, remaining capacity in the next 24,
// accumulated value in the top 24.  make_knapsack() bounds instances
// so every field fits.
inline constexpr std::uint64_t bnb_field_cap = std::uint64_t{1} << 24;

inline std::uint64_t pack_subproblem(const bnb_subproblem &sp) {
    return static_cast<std::uint64_t>(sp.depth & 0xffffu) |
           (sp.remaining << 16) | (sp.value << 40);
}

inline bnb_subproblem unpack_subproblem(std::uint64_t v) {
    bnb_subproblem sp;
    sp.depth = static_cast<std::uint32_t>(v & 0xffffu);
    sp.remaining = (v >> 16) & (bnb_field_cap - 1);
    sp.value = v >> 40;
    return sp;
}

/// Fractional (LP) bound: greedy by density over the undecided suffix,
/// +1 so the bound is strictly optimistic after truncation.
inline std::uint64_t knapsack_upper_bound(const knapsack_instance &ks,
                                          const bnb_subproblem &sp) {
    double bound = static_cast<double>(sp.value);
    std::uint64_t cap = sp.remaining;
    for (std::uint32_t i = sp.depth; i < ks.order.size(); ++i) {
        const std::uint32_t it = ks.order[i];
        if (ks.weight[it] <= cap) {
            cap -= ks.weight[it];
            bound += ks.value[it];
        } else {
            bound +=
                static_cast<double>(ks.value[it]) * cap / ks.weight[it];
            break;
        }
    }
    return static_cast<std::uint64_t>(bound) + 1;
}

/// Classic DP over capacity — the reference every parallel run is
/// checked against.
inline std::uint64_t knapsack_dp(const knapsack_instance &ks) {
    std::vector<std::uint64_t> best(ks.capacity + 1, 0);
    for (std::size_t i = 0; i < ks.weight.size(); ++i)
        for (std::uint64_t c = ks.capacity; c >= ks.weight[i]; --c)
            best[c] = std::max(best[c], best[c - ks.weight[i]] +
                                            ks.value[i]);
    return best[ks.capacity];
}

/// Compute the density order and the DP optimum for an instance whose
/// weight/value/capacity are already set.  Throws if any field would
/// overflow the 24-bit packing.
inline void finalize_instance(knapsack_instance &ks) {
    std::uint64_t total_weight = 0, total_value = 0;
    for (std::size_t i = 0; i < ks.weight.size(); ++i) {
        total_weight += ks.weight[i];
        total_value += ks.value[i];
    }
    if (ks.weight.size() > 0xffffu || ks.capacity >= bnb_field_cap ||
        total_weight >= bnb_field_cap || total_value >= bnb_field_cap)
        throw std::invalid_argument(
            "knapsack instance exceeds 16/24/24-bit subproblem packing");
    ks.order.resize(ks.weight.size());
    for (std::uint32_t i = 0; i < ks.order.size(); ++i)
        ks.order[i] = i;
    std::sort(ks.order.begin(), ks.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return static_cast<double>(ks.value[a]) / ks.weight[a] >
                         static_cast<double>(ks.value[b]) / ks.weight[b];
              });
    ks.optimum = knapsack_dp(ks);
}

/// Deterministic instance generation: uncorrelated weights and values
/// and capacity at half the total weight.  Weights and values are
/// independent: value diversity is what makes expanded-node counts
/// order-sensitive — a wrong early branch caps its subtree's best
/// completion well below the optimum, so an exact queue prunes it
/// where a relaxed one expands it.
inline knapsack_instance make_knapsack(std::uint32_t items,
                                       std::uint64_t seed) {
    knapsack_instance ks;
    xoroshiro128 rng{seed ^ 0x9e3779b97f4a7c15ull};
    std::uint64_t total_weight = 0;
    for (std::uint32_t i = 0; i < items; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.range(50, 1000));
        ks.weight.push_back(w);
        ks.value.push_back(static_cast<std::uint32_t>(rng.range(50, 1000)));
        total_weight += w;
    }
    ks.capacity = total_weight / 2;
    finalize_instance(ks);
    return ks;
}

struct bnb_params {
    unsigned threads = 4;
    /// Pre-enumerate the tree breadth-first to this depth and seed the
    /// queue with the whole frontier (~2^depth subproblems) instead of
    /// just the root.  Without it a single worker's dive stays inside
    /// its thread-local (exact) component and finds the optimum before
    /// relaxation can matter at all; a frontier wider than k forces
    /// the search through the shared, relaxed ordering.  0 = root only.
    std::uint32_t seed_frontier_depth = 0;
    std::vector<std::uint32_t> pin_cpus;
    stats::latency_recorder_set *latency = nullptr;
    std::function<void()> on_adapt_tick;
    double adapt_tick_s = 0.005;
    trace::progress_counters *progress = nullptr;
};

struct bnb_result {
    std::uint64_t best = 0;
    std::uint64_t expanded = 0;
    /// Expansions whose bound could not beat the true optimum — work a
    /// clairvoyant best-first search would have pruned.  Grows with
    /// relaxation: the looser the pop order, the more stale frontier
    /// nodes get expanded before the incumbent tightens.
    std::uint64_t wasted_expansions = 0;
    /// Pops discarded without expansion (bound had fallen below the
    /// incumbent by the time the node surfaced, or depth exhausted).
    std::uint64_t pruned_pops = 0;
    std::uint64_t pushed = 0;
    std::uint64_t failed_pops = 0;
    std::uint64_t pin_failures = 0;
    double elapsed_s = 0;
    /// Seconds until the incumbent first reached the DP optimum
    /// (negative if it never did — a correctness failure).
    double time_to_optimum_s = -1.0;

    double ops_per_sec() const {
        const auto ops = expanded + pruned_pops + pushed;
        return elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0;
    }
};

/// Run best-first branch-and-bound to completion on an empty queue.
/// The queue must have uint64 keys and values; the key is the
/// bit-flipped bound so the most promising subproblem pops first.
template <typename PQ>
bnb_result run_bnb(PQ &q, const knapsack_instance &ks,
                   const bnb_params &params) {
    check_thread_capacity(params.threads);
    constexpr std::uint64_t key_flip = ~std::uint64_t{0};

    std::atomic<std::uint64_t> incumbent{0};
    std::atomic<std::int64_t> outstanding{0};
    std::atomic<std::uint64_t> expanded{0}, wasted{0}, pruned{0};
    std::atomic<std::uint64_t> pushed{0}, failed{0}, pin_failures{0};
    std::atomic<std::uint64_t> t_opt_ns{~std::uint64_t{0}};
    if (ks.optimum == 0) // nothing fits: the empty incumbent is optimal
        t_opt_ns.store(0);
    std::barrier sync{static_cast<std::ptrdiff_t>(params.threads) + 1};
    wall_timer timer; // reset by the main thread at the start barrier

    // Seed the queue before the workers start: breadth-first expansion
    // to seed_frontier_depth (no pruning — the incumbent is still 0),
    // every frontier node inserted with its bound.  Happens-before the
    // workers via the start barrier, so no worker can observe
    // outstanding == 0 before the tree is live.
    {
        std::vector<bnb_subproblem> frontier{
            bnb_subproblem{0, ks.capacity, 0}};
        const std::uint32_t depth_cap =
            std::min(params.seed_frontier_depth, ks.items() - 1);
        for (std::uint32_t d = 0; d < depth_cap; ++d) {
            std::vector<bnb_subproblem> next;
            next.reserve(frontier.size() * 2);
            for (const auto &sp : frontier) {
                const std::uint32_t it = ks.order[sp.depth];
                if (ks.weight[it] <= sp.remaining) {
                    bnb_subproblem take = sp;
                    ++take.depth;
                    take.remaining -= ks.weight[it];
                    take.value += ks.value[it];
                    next.push_back(take);
                }
                bnb_subproblem skip = sp;
                ++skip.depth;
                next.push_back(skip);
            }
            frontier = std::move(next);
        }
        auto h = pq_handle(q);
        for (const auto &sp : frontier) {
            outstanding.fetch_add(1, std::memory_order_acq_rel);
            h.insert(key_flip - knapsack_upper_bound(ks, sp),
                     pack_subproblem(sp));
        }
        h.flush();
        pushed.store(frontier.size());
    }

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < params.threads; ++t) {
        pool.emplace_back([&, t] {
            if (!params.pin_cpus.empty() &&
                !topo::pin_self(
                    params.pin_cpus[t % params.pin_cpus.size()]))
                pin_failures.fetch_add(1, std::memory_order_relaxed);
            auto h = pq_handle(q);
            trace::progress_counters *const prog = params.progress;
            std::uint64_t my_expanded = 0, my_wasted = 0, my_pruned = 0;
            std::uint64_t my_pushed = 0, my_failed = 0;

            // Bound, prune-at-generation, account, insert.  The
            // outstanding increment happens *before* the insert so a
            // concurrent failed-pop cannot observe an empty queue and
            // a zero count while this subproblem is in flight.
            auto push = [&](const bnb_subproblem &sp) {
                const std::uint64_t bound = knapsack_upper_bound(ks, sp);
                if (bound <= incumbent.load(std::memory_order_relaxed))
                    return;
                outstanding.fetch_add(1, std::memory_order_acq_rel);
                stats::op_sample sample{params.latency, t,
                                        stats::op_kind::insert};
                h.insert(key_flip - bound, pack_subproblem(sp));
                sample.commit();
                ++my_pushed;
            };

            sync.arrive_and_wait();

            std::uint64_t key, packed;
            for (;;) {
                bool ok;
                {
                    stats::op_sample sample{params.latency, t,
                                            stats::op_kind::delete_min};
                    ok = h.try_delete_min(key, packed);
                    if (ok)
                        sample.commit();
                }
                if (!ok) {
                    ++my_failed;
                    // Publish our own buffered inserts: otherwise this
                    // worker could spin on an "empty" queue whose only
                    // live nodes sit in its private buffer.
                    h.flush();
                    if (outstanding.load(std::memory_order_acquire) == 0)
                        break;
                    if (prog != nullptr)
                        prog->publish(t,
                                      my_expanded + my_pruned +
                                          my_pushed + my_failed,
                                      my_failed);
                    continue;
                }
                const bnb_subproblem sp = unpack_subproblem(packed);
                const std::uint64_t bound = key_flip - key;
                // Incumbent updates happen at complete assignments only
                // (textbook best-first B&B).  That makes expanded-node
                // count a *relaxation-sensitive* scalar: while a dive
                // towards the first good leaf is in flight, a relaxed
                // pop order keeps expanding loose frontier nodes an
                // exact queue would have held back until the incumbent
                // could prune them.
                auto complete = [&](std::uint64_t value) {
                    std::uint64_t inc =
                        incumbent.load(std::memory_order_relaxed);
                    while (value > inc &&
                           !incumbent.compare_exchange_weak(inc, value))
                        ;
                    if (value >= ks.optimum) {
                        // First arrival at the optimum wins the
                        // time-to-optimum stamp.
                        std::uint64_t unset = ~std::uint64_t{0};
                        t_opt_ns.compare_exchange_strong(
                            unset, timer.elapsed_ns());
                    }
                };
                if (bound > incumbent.load(std::memory_order_relaxed) &&
                    sp.depth < ks.items()) {
                    ++my_expanded;
                    if (bound <= ks.optimum)
                        ++my_wasted;
                    KLSM_TRACE_EVENT(trace::kind::bnb_expand, sp.depth,
                                     bound);
                    const std::uint32_t it = ks.order[sp.depth];
                    const bool leaf = sp.depth + 1 == ks.items();
                    // Branch 1: take the item (if it fits).
                    if (ks.weight[it] <= sp.remaining) {
                        bnb_subproblem take = sp;
                        ++take.depth;
                        take.remaining -= ks.weight[it];
                        take.value += ks.value[it];
                        if (leaf)
                            complete(take.value);
                        else
                            push(take);
                    }
                    // Branch 2: skip the item.
                    if (leaf) {
                        complete(sp.value);
                    } else {
                        bnb_subproblem skip = sp;
                        ++skip.depth;
                        push(skip);
                    }
                } else {
                    ++my_pruned;
                }
                outstanding.fetch_sub(1, std::memory_order_acq_rel);
                if (prog != nullptr)
                    prog->publish(t,
                                  my_expanded + my_pruned + my_pushed +
                                      my_failed,
                                  my_failed);
            }
            h.flush();
            expanded.fetch_add(my_expanded);
            wasted.fetch_add(my_wasted);
            pruned.fetch_add(my_pruned);
            pushed.fetch_add(my_pushed);
            failed.fetch_add(my_failed);
        });
    }

    periodic_ticker ticker{params.on_adapt_tick, params.adapt_tick_s};
    timer.reset();
    sync.arrive_and_wait(); // release the workers
    for (auto &th : pool)
        th.join();

    bnb_result out;
    out.elapsed_s = timer.elapsed_s();
    out.best = incumbent.load();
    out.expanded = expanded.load();
    out.wasted_expansions = wasted.load();
    out.pruned_pops = pruned.load();
    out.pushed = pushed.load();
    out.failed_pops = failed.load();
    out.pin_failures = pin_failures.load();
    const std::uint64_t opt_ns = t_opt_ns.load();
    if (opt_ns != ~std::uint64_t{0})
        out.time_to_optimum_s = static_cast<double>(opt_ns) * 1e-9;
    return out;
}

} // namespace klsm::workloads
