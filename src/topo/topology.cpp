#include "topo/topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace klsm::topo {
namespace {

/// Read a whole small sysfs file; false if it cannot be opened.
bool read_file(const std::filesystem::path &p, std::string &out) {
    std::ifstream in(p);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/// Read a sysfs file holding one unsigned integer.
bool read_u32(const std::filesystem::path &p, std::uint32_t &out) {
    std::string s;
    if (!read_file(p, s))
        return false;
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(s, &pos);
        // Allow trailing whitespace only (sysfs ends values with '\n').
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(
                                     s[pos])))
            ++pos;
        if (pos != s.size() || v > 0xffffffffUL)
            return false;
        out = static_cast<std::uint32_t>(v);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

bool read_cpulist(const std::filesystem::path &p,
                  std::vector<std::uint32_t> &out) {
    std::string s;
    return read_file(p, s) && parse_cpulist(s, out);
}

} // namespace

bool parse_cpulist(const std::string &list, std::vector<std::uint32_t> &out) {
    // Largest cpu id accepted: well above any real NR_CPUS (kernels cap
    // at 8192) but small enough that a corrupt or hostile cpulist can
    // neither wrap the range-expansion counter nor balloon the output.
    constexpr std::uint32_t max_cpu_id = 65535;
    out.clear();
    std::size_t i = 0;
    const auto skip_ws = [&] {
        while (i < list.size() &&
               std::isspace(static_cast<unsigned char>(list[i])))
            ++i;
    };
    const auto parse_u32 = [&](std::uint32_t &v) {
        if (i >= list.size() ||
            !std::isdigit(static_cast<unsigned char>(list[i])))
            return false;
        std::uint64_t acc = 0;
        while (i < list.size() &&
               std::isdigit(static_cast<unsigned char>(list[i]))) {
            acc = acc * 10 + (list[i] - '0');
            if (acc > max_cpu_id)
                return false;
            ++i;
        }
        v = static_cast<std::uint32_t>(acc);
        return true;
    };
    skip_ws();
    // An empty cpulist (e.g. a memory-only node) is valid and empty.
    while (i < list.size()) {
        std::uint32_t lo;
        if (!parse_u32(lo)) {
            out.clear();
            return false;
        }
        std::uint32_t hi = lo;
        if (i < list.size() && list[i] == '-') {
            ++i;
            if (!parse_u32(hi) || hi < lo) {
                out.clear();
                return false;
            }
        }
        for (std::uint32_t c = lo; c <= hi; ++c)
            out.push_back(c);
        skip_ws();
        if (i < list.size()) {
            if (list[i] != ',') {
                out.clear();
                return false;
            }
            ++i;
            skip_ws();
            // A trailing comma is malformed.
            if (i >= list.size()) {
                out.clear();
                return false;
            }
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return true;
}

void topology::finalize() {
    std::sort(cpus_.begin(), cpus_.end(),
              [](const logical_cpu &a, const logical_cpu &b) {
                  return a.os_id < b.os_id;
              });
    std::set<std::uint32_t> pkgs, nodes;
    std::set<std::pair<std::uint32_t, std::uint32_t>> cores;
    smt_ = false;
    for (const auto &c : cpus_) {
        pkgs.insert(c.package);
        nodes.insert(c.node);
        cores.insert({c.package, c.core});
        smt_ = smt_ || c.smt_rank > 0;
    }
    packages_ = static_cast<std::uint32_t>(pkgs.size());
    nodes_ = static_cast<std::uint32_t>(nodes.size());
    cores_ = static_cast<std::uint32_t>(cores.size());
    node_ids_.assign(nodes.begin(), nodes.end());
}

topology topology::fallback(std::uint32_t n_cpus) {
    topology t;
    t.cpus_.resize(std::max<std::uint32_t>(n_cpus, 1));
    for (std::uint32_t i = 0; i < t.cpus_.size(); ++i) {
        t.cpus_[i].os_id = i;
        t.cpus_[i].package = 0;
        t.cpus_[i].core = i; // one thread per synthetic core: no SMT
        t.cpus_[i].node = 0;
    }
    t.finalize();
    t.from_sysfs_ = false;
    return t;
}

topology topology::discover(const std::string &sysfs_root) {
    namespace fs = std::filesystem;
    const fs::path root{sysfs_root};

    std::vector<std::uint32_t> online;
    if (!read_cpulist(root / "cpu" / "online", online) || online.empty()) {
        const unsigned hw = std::thread::hardware_concurrency();
        return fallback(hw ? hw : 1);
    }

    topology t;
    for (const std::uint32_t cpu : online) {
        const fs::path tdir =
            root / "cpu" / ("cpu" + std::to_string(cpu)) / "topology";
        logical_cpu c;
        c.os_id = cpu;
        // The kernel names the socket file physical_package_id; accept
        // the shorter package_id too (older docs and fake trees use it).
        // An online CPU without topology files (races with hotplug, or a
        // truncated fake tree) is skipped rather than invented.
        if (!read_u32(tdir / "physical_package_id", c.package) &&
            !read_u32(tdir / "package_id", c.package))
            continue;
        if (!read_u32(tdir / "core_id", c.core))
            continue;
        t.cpus_.push_back(c);
    }
    if (t.cpus_.empty()) {
        const unsigned hw = std::thread::hardware_concurrency();
        return fallback(hw ? hw : 1);
    }

    // SMT ranks from thread_siblings_list: a cpu's rank is its position
    // among its core's *discovered* siblings (offline siblings still
    // appear in the kernel's list and must not inflate ranks).  When the
    // file is absent, fall back to grouping by (package, core).
    const auto discovered = [&t](std::uint32_t cpu) {
        for (const auto &c : t.cpus_)
            if (c.os_id == cpu)
                return true;
        return false;
    };
    for (auto &c : t.cpus_) {
        const fs::path tdir =
            root / "cpu" / ("cpu" + std::to_string(c.os_id)) / "topology";
        std::vector<std::uint32_t> sibs;
        std::uint32_t rank = 0;
        if (read_cpulist(tdir / "thread_siblings_list", sibs) &&
            !sibs.empty()) {
            for (const std::uint32_t s : sibs)
                rank += (s < c.os_id && discovered(s));
        } else {
            for (const auto &o : t.cpus_)
                rank += (o.os_id < c.os_id && o.package == c.package &&
                         o.core == c.core);
        }
        c.smt_rank = rank;
    }

    // NUMA nodes: node<N>/cpulist maps cpus to nodes.  Absent node dirs
    // (CONFIG_NUMA=n, many containers) mean one implicit node 0.
    std::error_code ec;
    const fs::path node_root = root / "node";
    if (fs::is_directory(node_root, ec)) {
        for (const auto &entry : fs::directory_iterator(node_root, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("node", 0) != 0 ||
                name.find_first_not_of("0123456789", 4) !=
                    std::string::npos ||
                name.size() == 4 || name.size() > 4 + 9)
                continue;
            const auto node_id = static_cast<std::uint32_t>(
                std::stoul(name.substr(4)));
            std::vector<std::uint32_t> node_cpus;
            if (!read_cpulist(entry.path() / "cpulist", node_cpus))
                continue;
            for (const std::uint32_t cpu : node_cpus)
                for (auto &c : t.cpus_)
                    if (c.os_id == cpu)
                        c.node = node_id;
        }
    }

    t.finalize();
    t.from_sysfs_ = true;
    return t;
}

const topology &topology::system() {
    static const topology t = discover();
    return t;
}

} // namespace klsm::topo
