#pragma once

// CPU/cache/NUMA topology discovery.
//
// The benchmarking literature around relaxed priority queues (k-LSM
// follow-up study, arXiv:1603.05047; "Engineering MultiQueues",
// arXiv:2504.11652) agrees that once a machine has more than one socket,
// throughput is dominated by *where* threads run, not by queue tweaks.
// This module gives the rest of the tree one authoritative answer to
// "what does the machine look like": every logical CPU with its package,
// physical core, NUMA node, and SMT rank, discovered from the kernel's
// sysfs tree (/sys/devices/system).
//
// Design points:
//   * The sysfs root is injectable, so tests run against checked-in fake
//     trees (multi-package, SMT, offline-CPU holes) on any machine.
//   * Discovery never fails: if the tree is absent or unparsable (e.g.
//     minimal containers mount no /sys), it degrades to a single-node,
//     single-package fallback sized by std::thread::hardware_concurrency,
//     and `from_sysfs()` reports which path was taken.
//   * Only *online* CPUs are represented.  Offline CPUs leave holes in
//     the os_id space; consumers must never assume density.

#include <cstdint>
#include <string>
#include <vector>

namespace klsm::topo {

/// One online logical CPU.
struct logical_cpu {
    std::uint32_t os_id = 0;    ///< kernel cpu number (cpuN)
    std::uint32_t package = 0;  ///< physical package (socket) id
    std::uint32_t core = 0;     ///< core id, unique *within* a package
    std::uint32_t node = 0;     ///< NUMA node id
    /// Position among the core's online SMT siblings, ordered by os_id:
    /// 0 is the primary hardware thread, 1+ are hyperthreads.
    std::uint32_t smt_rank = 0;

    friend bool operator==(const logical_cpu &,
                           const logical_cpu &) = default;
};

/// Immutable snapshot of the machine layout.
class topology {
public:
    /// Discover from a sysfs tree rooted at `sysfs_root` (the directory
    /// containing `cpu/` and `node/`, normally "/sys/devices/system").
    /// Falls back to `fallback()` when the tree is missing or malformed;
    /// `from_sysfs()` distinguishes the two outcomes.
    static topology discover(
        const std::string &sysfs_root = "/sys/devices/system");

    /// Synthetic single-package, single-node, no-SMT topology with
    /// `n_cpus` CPUs (at least 1); the container / unknown-platform path.
    static topology fallback(std::uint32_t n_cpus);

    /// Process-wide cached discovery of the real machine (first call
    /// discovers, later calls are free).  Thread-safe.
    static const topology &system();

    /// True iff this snapshot came from a parsed sysfs tree rather than
    /// the synthetic fallback.
    bool from_sysfs() const { return from_sysfs_; }

    /// Online CPUs, sorted by os_id.
    const std::vector<logical_cpu> &cpus() const { return cpus_; }

    std::uint32_t num_cpus() const {
        return static_cast<std::uint32_t>(cpus_.size());
    }
    /// Distinct physical packages (sockets) with at least one online CPU.
    std::uint32_t num_packages() const { return packages_; }
    /// Distinct NUMA nodes with at least one online CPU.
    std::uint32_t num_nodes() const { return nodes_; }
    /// Distinct physical cores (package, core) with at least one online
    /// CPU.
    std::uint32_t num_cores() const { return cores_; }
    /// True iff any core has more than one online hardware thread.
    bool smt() const { return smt_; }

    /// NUMA node ids in ascending order (not necessarily dense).
    const std::vector<std::uint32_t> &node_ids() const { return node_ids_; }

    /// Node of an OS cpu id.  Unknown cpus (offline or out of range)
    /// map to the first discovered node — not necessarily node 0 — so
    /// callers can feed sched_getcpu() results directly and always get
    /// a node that exists.
    std::uint32_t node_of(std::uint32_t os_cpu) const {
        for (const auto &c : cpus_)
            if (c.os_id == os_cpu)
                return c.node;
        return node_ids_.empty() ? 0 : node_ids_.front();
    }

    /// Dense index of `node` within node_ids(); 0 for unknown nodes.
    std::uint32_t node_index(std::uint32_t node) const {
        for (std::size_t i = 0; i < node_ids_.size(); ++i)
            if (node_ids_[i] == node)
                return static_cast<std::uint32_t>(i);
        return 0;
    }

    /// Online CPUs of one NUMA node, sorted by os_id.
    std::vector<logical_cpu> cpus_of_node(std::uint32_t node) const {
        std::vector<logical_cpu> out;
        for (const auto &c : cpus_)
            if (c.node == node)
                out.push_back(c);
        return out;
    }

private:
    void finalize();

    std::vector<logical_cpu> cpus_;
    std::vector<std::uint32_t> node_ids_;
    std::uint32_t packages_ = 0;
    std::uint32_t nodes_ = 0;
    std::uint32_t cores_ = 0;
    bool smt_ = false;
    bool from_sysfs_ = false;
};

/// Parse a kernel cpulist string ("0-3,5,8-9"; empty and trailing
/// whitespace tolerated) into ascending cpu ids.  Returns false on
/// malformed input (garbage, reversed ranges) and leaves `out` empty.
bool parse_cpulist(const std::string &list, std::vector<std::uint32_t> &out);

} // namespace klsm::topo
