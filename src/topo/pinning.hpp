#pragma once

// Thread-placement policies over a discovered topology.
//
// A policy is a deterministic ordering of the online logical CPUs; the
// harnesses pin worker t to the t-th CPU of the order (mod size).  The
// three non-trivial policies are the standard affinity shapes:
//
//   compact   — pack threads as close together as possible: fill every
//               hardware thread of a core, then the next core of the same
//               package, then the next package.  Maximizes cache sharing,
//               measures single-socket behavior first.
//   scatter   — spread threads as far apart as possible: round-robin
//               across packages, physical cores before SMT siblings.
//               Maximizes aggregate cache/memory bandwidth, exposes
//               cross-socket traffic at low thread counts.
//   numa_fill — fill NUMA node 0 completely (compact within the node),
//               then node 1, ...  The shape under which a NUMA-sharded
//               queue stays node-local until a node overflows.
//
// `none` performs no pinning at all (the scheduler decides), which is
// the pre-topology behavior and the default everywhere.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "topo/topology.hpp"

namespace klsm::topo {

enum class pin_policy { none, compact, scatter, numa_fill };

inline const char *pin_policy_name(pin_policy p) {
    switch (p) {
    case pin_policy::none: return "none";
    case pin_policy::compact: return "compact";
    case pin_policy::scatter: return "scatter";
    case pin_policy::numa_fill: return "numa_fill";
    }
    return "none";
}

inline std::optional<pin_policy> parse_pin_policy(const std::string &s) {
    if (s == "none")
        return pin_policy::none;
    if (s == "compact")
        return pin_policy::compact;
    if (s == "scatter")
        return pin_policy::scatter;
    if (s == "numa_fill")
        return pin_policy::numa_fill;
    return std::nullopt;
}

/// The OS cpu ids a policy assigns, in placement order.  `none` returns
/// an empty vector: harnesses treat that as "do not pin".
inline std::vector<std::uint32_t> cpu_order(const topology &t,
                                            pin_policy policy) {
    std::vector<std::uint32_t> out;
    if (policy == pin_policy::none)
        return out;

    // Compact order of an arbitrary cpu set: (package, core, smt_rank).
    const auto compact_sort = [](std::vector<logical_cpu> &v) {
        std::sort(v.begin(), v.end(),
                  [](const logical_cpu &a, const logical_cpu &b) {
                      if (a.package != b.package)
                          return a.package < b.package;
                      if (a.core != b.core)
                          return a.core < b.core;
                      if (a.smt_rank != b.smt_rank)
                          return a.smt_rank < b.smt_rank;
                      return a.os_id < b.os_id;
                  });
    };

    if (policy == pin_policy::compact) {
        std::vector<logical_cpu> v = t.cpus();
        compact_sort(v);
        for (const auto &c : v)
            out.push_back(c.os_id);
        return out;
    }

    if (policy == pin_policy::numa_fill) {
        for (const std::uint32_t node : t.node_ids()) {
            std::vector<logical_cpu> v = t.cpus_of_node(node);
            compact_sort(v);
            for (const auto &c : v)
                out.push_back(c.os_id);
        }
        return out;
    }

    // scatter: per-package lists ordered physical-cores-first
    // (smt_rank, core), then a round-robin merge across packages.
    std::vector<std::uint32_t> pkg_ids;
    for (const auto &c : t.cpus())
        if (std::find(pkg_ids.begin(), pkg_ids.end(), c.package) ==
            pkg_ids.end())
            pkg_ids.push_back(c.package);
    std::sort(pkg_ids.begin(), pkg_ids.end());
    std::vector<std::vector<logical_cpu>> per_pkg(pkg_ids.size());
    for (const auto &c : t.cpus()) {
        const auto idx = static_cast<std::size_t>(
            std::find(pkg_ids.begin(), pkg_ids.end(), c.package) -
            pkg_ids.begin());
        per_pkg[idx].push_back(c);
    }
    for (auto &v : per_pkg)
        std::sort(v.begin(), v.end(),
                  [](const logical_cpu &a, const logical_cpu &b) {
                      if (a.smt_rank != b.smt_rank)
                          return a.smt_rank < b.smt_rank;
                      if (a.core != b.core)
                          return a.core < b.core;
                      return a.os_id < b.os_id;
                  });
    for (std::size_t i = 0;; ++i) {
        bool any = false;
        for (const auto &v : per_pkg) {
            if (i < v.size()) {
                out.push_back(v[i].os_id);
                any = true;
            }
        }
        if (!any)
            break;
    }
    return out;
}

/// Convenience: policy order by name; nullopt for an unknown name.
inline std::optional<std::vector<std::uint32_t>>
cpu_order(const topology &t, const std::string &policy_name) {
    const auto p = parse_pin_policy(policy_name);
    if (!p)
        return std::nullopt;
    return cpu_order(t, *p);
}

/// Pin the calling thread to one OS cpu.  Returns true on success; on
/// non-Linux platforms (or when the cpu id is stale) it is a no-op that
/// returns false, so callers can treat pinning as best-effort.
inline bool pin_self(std::uint32_t os_cpu) {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(os_cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)os_cpu;
    return false;
#endif
}

/// The NUMA node the calling thread currently runs on, resolved
/// against `t`; falls back to `t`'s first node when the platform
/// cannot report a cpu (topology::node_of's unknown-cpu behavior).
/// This is the node a non-sharded queue should bind its pools to.
inline std::uint32_t current_node(const topology &t);

/// The OS cpu the calling thread is currently running on, or nullopt
/// when the platform cannot say.
inline std::optional<std::uint32_t> current_cpu() {
#if defined(__linux__)
    const int cpu = sched_getcpu();
    if (cpu >= 0)
        return static_cast<std::uint32_t>(cpu);
#endif
    return std::nullopt;
}

inline std::uint32_t current_node(const topology &t) {
    const auto cpu = current_cpu();
    return t.node_of(cpu ? *cpu : 0);
}

} // namespace klsm::topo
