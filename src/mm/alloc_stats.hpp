#pragma once

// Allocation-placement telemetry for the pool layer.
//
// Same shape as the src/stats/ latency recorder: every pool owns one
// cache-line-aligned counter block that only its owning thread
// increments (relaxed atomics, so a merge pass — or a curious test —
// can read mid-run without a data race or a shared cache line on the
// allocation path).  The queue aggregates all of its pools' counters
// into one `memory_stats` snapshot after a run; klsm_bench serializes
// that as the `memory` JSON object when --alloc-stats is on.
//
// What is counted, per pool family (item pools vs block pools):
//   * chunks / bytes        — arena chunks or blocks actually allocated
//                             from the OS, and their byte footprint;
//   * reuse_hits            — allocations satisfied by recycling
//                             (item-pool sweep hit, block-pool bucket
//                             hit);
//   * fresh_allocs          — allocations that had to create storage;
//   * growth_beyond_bound   — block acquisitions beyond the paper's
//                             four-blocks-per-level bound (Section 4.4).
//                             Structural for DistLSM pools (tests assert
//                             it stays 0 there); for shared-LSM pools
//                             the conservative torn-scan reclamation
//                             check may refuse a recyclable block under
//                             churn, so the safety valve firing there is
//                             by design and merely counted.  Always 0
//                             for item pools (the paper bounds blocks,
//                             not items);
//   * bound/prefaulted_chunks — how many chunks the placement layer
//                             actually mbind()-ed / pre-faulted, so a
//                             silent fallback is visible in the report;
//   * resident histograms   — where the pages ended up, from the
//                             move_pages(2) query (quiescent-only:
//                             regions are walked without locks, so
//                             query after workers have joined).

#include <atomic>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

#include "mm/placement.hpp"
#include "util/align.hpp"

namespace klsm::mm {

/// Plain (non-atomic) copy of one pool's counters; merges additively.
struct pool_alloc_snapshot {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    /// Sweep hits only — allocations satisfied by the owner's linear
    /// scan over its own dead items (or a block-pool bucket hit).  The
    /// freelist tier counts separately so its hit rate is observable
    /// per pool (ISSUE 7 satellite: the two used to be conflated).
    std::uint64_t reuse_hits = 0;
    std::uint64_t fresh_allocs = 0;
    std::uint64_t growth_beyond_bound = 0;
    std::uint64_t bound_chunks = 0;
    std::uint64_t prefaulted_chunks = 0;
    // Reclamation tier (src/mm/reclaim/):
    std::uint64_t freelist_hits = 0;  ///< allocations from freelist pops
    std::uint64_t freelist_drops = 0; ///< popped nodes discarded (ghosts)
    std::uint64_t reclaimed_chunks = 0; ///< currently-released (gauge)
    std::uint64_t released_bytes = 0;   ///< currently-released (gauge)
    std::uint64_t shrink_events = 0;    ///< cumulative page releases
    std::uint64_t reactivated_chunks = 0; ///< released chunks regrown
    std::uint64_t huge_chunks = 0;      ///< MAP_HUGETLB-backed chunks
    std::uint64_t thp_chunks = 0;       ///< MADV_HUGEPAGE-advised chunks

    /// Fraction of allocations satisfied by recycling of either kind
    /// (the historical meaning of this rate, now counting both tiers).
    double reuse_hit_rate() const {
        const std::uint64_t total =
            reuse_hits + freelist_hits + fresh_allocs;
        return total ? static_cast<double>(reuse_hits + freelist_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /// Fraction of allocations satisfied by the freelist tier alone.
    double freelist_hit_rate() const {
        const std::uint64_t total =
            reuse_hits + freelist_hits + fresh_allocs;
        return total ? static_cast<double>(freelist_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    void merge(const pool_alloc_snapshot &o) {
        chunks += o.chunks;
        bytes += o.bytes;
        reuse_hits += o.reuse_hits;
        fresh_allocs += o.fresh_allocs;
        growth_beyond_bound += o.growth_beyond_bound;
        bound_chunks += o.bound_chunks;
        prefaulted_chunks += o.prefaulted_chunks;
        freelist_hits += o.freelist_hits;
        freelist_drops += o.freelist_drops;
        reclaimed_chunks += o.reclaimed_chunks;
        released_bytes += o.released_bytes;
        shrink_events += o.shrink_events;
        reactivated_chunks += o.reactivated_chunks;
        huge_chunks += o.huge_chunks;
        thp_chunks += o.thp_chunks;
    }
};

/// Owner-increment counter block, one per pool.  Aligned so two pools'
/// counters never share a cache line; increments are relaxed stores by
/// the owning thread, reads may come from any thread.
struct alignas(cache_line_size) alloc_counters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> reuse_hits{0};
    std::atomic<std::uint64_t> fresh_allocs{0};
    std::atomic<std::uint64_t> growth_beyond_bound{0};
    std::atomic<std::uint64_t> bound_chunks{0};
    std::atomic<std::uint64_t> prefaulted_chunks{0};
    std::atomic<std::uint64_t> freelist_hits{0};
    std::atomic<std::uint64_t> freelist_drops{0};
    std::atomic<std::uint64_t> reclaimed_chunks{0};
    std::atomic<std::uint64_t> released_bytes{0};
    std::atomic<std::uint64_t> shrink_events{0};
    std::atomic<std::uint64_t> reactivated_chunks{0};
    std::atomic<std::uint64_t> huge_chunks{0};
    std::atomic<std::uint64_t> thp_chunks{0};

    void count_chunk(std::size_t chunk_bytes, chunk_placement how) {
        chunks.fetch_add(1, std::memory_order_relaxed);
        bytes.fetch_add(chunk_bytes, std::memory_order_relaxed);
        if (how.bound)
            bound_chunks.fetch_add(1, std::memory_order_relaxed);
        if (how.prefaulted)
            prefaulted_chunks.fetch_add(1, std::memory_order_relaxed);
        if (how.huge)
            huge_chunks.fetch_add(1, std::memory_order_relaxed);
        if (how.thp)
            thp_chunks.fetch_add(1, std::memory_order_relaxed);
    }
    void count_reuse_hit() {
        reuse_hits.fetch_add(1, std::memory_order_relaxed);
    }
    void count_fresh() {
        fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    void count_growth() {
        growth_beyond_bound.fetch_add(1, std::memory_order_relaxed);
    }
    void count_freelist_hit() {
        freelist_hits.fetch_add(1, std::memory_order_relaxed);
    }
    void count_freelist_drop() {
        freelist_drops.fetch_add(1, std::memory_order_relaxed);
    }
    /// One chunk's pages returned to the OS.  `reclaimed_chunks` /
    /// `released_bytes` are gauges (current state, so the schema
    /// invariant reclaimed_chunks <= chunks always holds);
    /// `shrink_events` counts every release cumulatively.
    void count_reclaim(std::size_t chunk_bytes) {
        reclaimed_chunks.fetch_add(1, std::memory_order_relaxed);
        released_bytes.fetch_add(chunk_bytes, std::memory_order_relaxed);
        shrink_events.fetch_add(1, std::memory_order_relaxed);
    }
    /// A released chunk brought back into service (pages will refault).
    void count_reactivate(std::size_t chunk_bytes) {
        reclaimed_chunks.fetch_sub(1, std::memory_order_relaxed);
        released_bytes.fetch_sub(chunk_bytes, std::memory_order_relaxed);
        reactivated_chunks.fetch_add(1, std::memory_order_relaxed);
    }

    pool_alloc_snapshot snapshot() const {
        pool_alloc_snapshot s;
        s.chunks = chunks.load(std::memory_order_relaxed);
        s.bytes = bytes.load(std::memory_order_relaxed);
        s.reuse_hits = reuse_hits.load(std::memory_order_relaxed);
        s.fresh_allocs = fresh_allocs.load(std::memory_order_relaxed);
        s.growth_beyond_bound =
            growth_beyond_bound.load(std::memory_order_relaxed);
        s.bound_chunks = bound_chunks.load(std::memory_order_relaxed);
        s.prefaulted_chunks =
            prefaulted_chunks.load(std::memory_order_relaxed);
        s.freelist_hits = freelist_hits.load(std::memory_order_relaxed);
        s.freelist_drops = freelist_drops.load(std::memory_order_relaxed);
        s.reclaimed_chunks =
            reclaimed_chunks.load(std::memory_order_relaxed);
        s.released_bytes = released_bytes.load(std::memory_order_relaxed);
        s.shrink_events = shrink_events.load(std::memory_order_relaxed);
        s.reactivated_chunks =
            reactivated_chunks.load(std::memory_order_relaxed);
        s.huge_chunks = huge_chunks.load(std::memory_order_relaxed);
        s.thp_chunks = thp_chunks.load(std::memory_order_relaxed);
        return s;
    }
};

/// One queue's aggregated memory telemetry: item pools, DistLSM block
/// pools, and shared-LSM block pools summed separately (the paper's
/// four-per-level bound is structural only for the DistLSM family, so
/// lumping them together would hide which valve fired), plus — when
/// requested and queryable — a resident-node histogram per family.
struct memory_stats {
    pool_alloc_snapshot items;
    pool_alloc_snapshot dist_blocks;
    pool_alloc_snapshot shared_blocks;
    resident_histogram items_resident;
    resident_histogram dist_blocks_resident;
    resident_histogram shared_blocks_resident;
    /// True iff the residency query was requested and the platform can
    /// answer it; the histograms are meaningful only then.
    bool resident_queried = false;

    void merge(const memory_stats &o) {
        items.merge(o.items);
        dist_blocks.merge(o.dist_blocks);
        shared_blocks.merge(o.shared_blocks);
        items_resident.merge(o.items_resident);
        dist_blocks_resident.merge(o.dist_blocks_resident);
        shared_blocks_resident.merge(o.shared_blocks_resident);
        resident_queried = resident_queried || o.resident_queried;
    }
};

namespace detail {

inline void pool_json(std::ostringstream &os, const char *name,
                      const pool_alloc_snapshot &p,
                      const resident_histogram &resident,
                      bool resident_queried) {
    os << '"' << name << "\":{"
       << "\"chunks\":" << p.chunks << ",\"bytes\":" << p.bytes
       << ",\"reuse_hits\":" << p.reuse_hits
       << ",\"fresh_allocs\":" << p.fresh_allocs << ",\"reuse_hit_rate\":"
       << std::setprecision(6) << p.reuse_hit_rate()
       << ",\"growth_beyond_bound\":" << p.growth_beyond_bound
       << ",\"bound_chunks\":" << p.bound_chunks
       << ",\"prefaulted_chunks\":" << p.prefaulted_chunks
       << ",\"freelist_hits\":" << p.freelist_hits
       << ",\"freelist_drops\":" << p.freelist_drops
       << ",\"freelist_hit_rate\":" << std::setprecision(6)
       << p.freelist_hit_rate()
       << ",\"reclaimed_chunks\":" << p.reclaimed_chunks
       << ",\"released_bytes\":" << p.released_bytes
       << ",\"shrink_events\":" << p.shrink_events
       << ",\"reactivated_chunks\":" << p.reactivated_chunks
       << ",\"huge_chunks\":" << p.huge_chunks
       << ",\"thp_chunks\":" << p.thp_chunks;
    if (resident_queried) {
        os << ",\"resident_nodes\":[";
        bool first = true;
        for (const auto &[node, pages] : resident.pairs()) {
            os << (first ? "" : ",") << '[' << node << ',' << pages
               << ']';
            first = false;
        }
        os << ']' << ",\"resident_unknown_pages\":"
           << resident.unknown_pages();
    }
    os << '}';
}

} // namespace detail

/// Serialize a memory_stats as the `memory` JSON object klsm_bench
/// embeds per record (README "Memory placement" documents the schema).
inline std::string memory_json(const memory_stats &m,
                               numa_alloc_policy policy) {
    std::ostringstream os;
    os << "{\"policy\":\"" << numa_alloc_policy_name(policy) << '"'
       << ",\"resident_queried\":"
       << (m.resident_queried ? "true" : "false") << ",\"pools\":{";
    detail::pool_json(os, "items", m.items, m.items_resident,
                      m.resident_queried);
    os << ',';
    detail::pool_json(os, "dist_blocks", m.dist_blocks,
                      m.dist_blocks_resident, m.resident_queried);
    os << ',';
    detail::pool_json(os, "shared_blocks", m.shared_blocks,
                      m.shared_blocks_resident, m.resident_queried);
    os << "}}";
    return os.str();
}

} // namespace klsm::mm
