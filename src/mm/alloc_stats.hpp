#pragma once

// Allocation-placement telemetry for the pool layer.
//
// Same shape as the src/stats/ latency recorder: every pool owns one
// cache-line-aligned counter block that only its owning thread
// increments (relaxed atomics, so a merge pass — or a curious test —
// can read mid-run without a data race or a shared cache line on the
// allocation path).  The queue aggregates all of its pools' counters
// into one `memory_stats` snapshot after a run; klsm_bench serializes
// that as the `memory` JSON object when --alloc-stats is on.
//
// What is counted, per pool family (item pools vs block pools):
//   * chunks / bytes        — arena chunks or blocks actually allocated
//                             from the OS, and their byte footprint;
//   * reuse_hits            — allocations satisfied by recycling
//                             (item-pool sweep hit, block-pool bucket
//                             hit);
//   * fresh_allocs          — allocations that had to create storage;
//   * growth_beyond_bound   — block acquisitions beyond the paper's
//                             four-blocks-per-level bound (Section 4.4).
//                             Structural for DistLSM pools (tests assert
//                             it stays 0 there); for shared-LSM pools
//                             the conservative torn-scan reclamation
//                             check may refuse a recyclable block under
//                             churn, so the safety valve firing there is
//                             by design and merely counted.  Always 0
//                             for item pools (the paper bounds blocks,
//                             not items);
//   * bound/prefaulted_chunks — how many chunks the placement layer
//                             actually mbind()-ed / pre-faulted, so a
//                             silent fallback is visible in the report;
//   * resident histograms   — where the pages ended up, from the
//                             move_pages(2) query (quiescent-only:
//                             regions are walked without locks, so
//                             query after workers have joined).

#include <atomic>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

#include "mm/placement.hpp"
#include "util/align.hpp"

namespace klsm::mm {

/// Plain (non-atomic) copy of one pool's counters; merges additively.
struct pool_alloc_snapshot {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t reuse_hits = 0;
    std::uint64_t fresh_allocs = 0;
    std::uint64_t growth_beyond_bound = 0;
    std::uint64_t bound_chunks = 0;
    std::uint64_t prefaulted_chunks = 0;

    /// Fraction of allocations satisfied by recycling.
    double reuse_hit_rate() const {
        const std::uint64_t total = reuse_hits + fresh_allocs;
        return total ? static_cast<double>(reuse_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    void merge(const pool_alloc_snapshot &o) {
        chunks += o.chunks;
        bytes += o.bytes;
        reuse_hits += o.reuse_hits;
        fresh_allocs += o.fresh_allocs;
        growth_beyond_bound += o.growth_beyond_bound;
        bound_chunks += o.bound_chunks;
        prefaulted_chunks += o.prefaulted_chunks;
    }
};

/// Owner-increment counter block, one per pool.  Aligned so two pools'
/// counters never share a cache line; increments are relaxed stores by
/// the owning thread, reads may come from any thread.
struct alignas(cache_line_size) alloc_counters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> reuse_hits{0};
    std::atomic<std::uint64_t> fresh_allocs{0};
    std::atomic<std::uint64_t> growth_beyond_bound{0};
    std::atomic<std::uint64_t> bound_chunks{0};
    std::atomic<std::uint64_t> prefaulted_chunks{0};

    void count_chunk(std::size_t chunk_bytes, chunk_placement how) {
        chunks.fetch_add(1, std::memory_order_relaxed);
        bytes.fetch_add(chunk_bytes, std::memory_order_relaxed);
        if (how.bound)
            bound_chunks.fetch_add(1, std::memory_order_relaxed);
        if (how.prefaulted)
            prefaulted_chunks.fetch_add(1, std::memory_order_relaxed);
    }
    void count_reuse_hit() {
        reuse_hits.fetch_add(1, std::memory_order_relaxed);
    }
    void count_fresh() {
        fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    void count_growth() {
        growth_beyond_bound.fetch_add(1, std::memory_order_relaxed);
    }

    pool_alloc_snapshot snapshot() const {
        pool_alloc_snapshot s;
        s.chunks = chunks.load(std::memory_order_relaxed);
        s.bytes = bytes.load(std::memory_order_relaxed);
        s.reuse_hits = reuse_hits.load(std::memory_order_relaxed);
        s.fresh_allocs = fresh_allocs.load(std::memory_order_relaxed);
        s.growth_beyond_bound =
            growth_beyond_bound.load(std::memory_order_relaxed);
        s.bound_chunks = bound_chunks.load(std::memory_order_relaxed);
        s.prefaulted_chunks =
            prefaulted_chunks.load(std::memory_order_relaxed);
        return s;
    }
};

/// One queue's aggregated memory telemetry: item pools, DistLSM block
/// pools, and shared-LSM block pools summed separately (the paper's
/// four-per-level bound is structural only for the DistLSM family, so
/// lumping them together would hide which valve fired), plus — when
/// requested and queryable — a resident-node histogram per family.
struct memory_stats {
    pool_alloc_snapshot items;
    pool_alloc_snapshot dist_blocks;
    pool_alloc_snapshot shared_blocks;
    resident_histogram items_resident;
    resident_histogram dist_blocks_resident;
    resident_histogram shared_blocks_resident;
    /// True iff the residency query was requested and the platform can
    /// answer it; the histograms are meaningful only then.
    bool resident_queried = false;

    void merge(const memory_stats &o) {
        items.merge(o.items);
        dist_blocks.merge(o.dist_blocks);
        shared_blocks.merge(o.shared_blocks);
        items_resident.merge(o.items_resident);
        dist_blocks_resident.merge(o.dist_blocks_resident);
        shared_blocks_resident.merge(o.shared_blocks_resident);
        resident_queried = resident_queried || o.resident_queried;
    }
};

namespace detail {

inline void pool_json(std::ostringstream &os, const char *name,
                      const pool_alloc_snapshot &p,
                      const resident_histogram &resident,
                      bool resident_queried) {
    os << '"' << name << "\":{"
       << "\"chunks\":" << p.chunks << ",\"bytes\":" << p.bytes
       << ",\"reuse_hits\":" << p.reuse_hits
       << ",\"fresh_allocs\":" << p.fresh_allocs << ",\"reuse_hit_rate\":"
       << std::setprecision(6) << p.reuse_hit_rate()
       << ",\"growth_beyond_bound\":" << p.growth_beyond_bound
       << ",\"bound_chunks\":" << p.bound_chunks
       << ",\"prefaulted_chunks\":" << p.prefaulted_chunks;
    if (resident_queried) {
        os << ",\"resident_nodes\":[";
        bool first = true;
        for (const auto &[node, pages] : resident.pairs()) {
            os << (first ? "" : ",") << '[' << node << ',' << pages
               << ']';
            first = false;
        }
        os << ']' << ",\"resident_unknown_pages\":"
           << resident.unknown_pages();
    }
    os << '}';
}

} // namespace detail

/// Serialize a memory_stats as the `memory` JSON object klsm_bench
/// embeds per record (README "Memory placement" documents the schema).
inline std::string memory_json(const memory_stats &m,
                               numa_alloc_policy policy) {
    std::ostringstream os;
    os << "{\"policy\":\"" << numa_alloc_policy_name(policy) << '"'
       << ",\"resident_queried\":"
       << (m.resident_queried ? "true" : "false") << ",\"pools\":{";
    detail::pool_json(os, "items", m.items, m.items_resident,
                      m.resident_queried);
    os << ',';
    detail::pool_json(os, "dist_blocks", m.dist_blocks,
                      m.dist_blocks_resident, m.resident_queried);
    os << ',';
    detail::pool_json(os, "shared_blocks", m.shared_blocks,
                      m.shared_blocks_resident, m.resident_queried);
    os << "}}";
    return os.str();
}

} // namespace klsm::mm
