#pragma once

// Wait-free item reuse pool (paper Section 4.4).
//
// Each thread owns one pool per queue.  Storage is type-stable (arena):
// item addresses remain valid for the queue's lifetime, so stale
// references held in blocks anywhere in the system are always safe to
// dereference and are rejected by the version check in item::take.
//
// Reuse policy: an item becomes reusable the moment its version turns
// even (logically deleted), even if blocks still reference it — the
// monotone version counter makes such references harmless.  The pool finds
// reusable items with an amortized-O(1) cyclic sweep over its own items;
// if the bounded sweep finds nothing (queue mostly full of live items) it
// falls back to fresh arena allocation, so allocation never blocks on the
// behaviour of other threads (wait-free).
//
// The reclamation tier (src/mm/reclaim/, opt-in via
// mem_placement::reclaim) layers two mechanisms on top:
//
//   * freelist — every item carries the pool's freelist sink; whichever
//     thread wins an item's take CAS pushes the dead item onto the
//     owner's tagged-pointer freelist (freelist.hpp).  The owner pops
//     from it before sweeping, so hot churn recycles in O(1) without
//     scanning and without the epoch path.
//
//   * shrink — chunk lifecycle bookkeeping (`chunk_rec`): a periodic
//     maintenance step inspects one full arena chunk at a time; a chunk
//     whose items are all dead is *quarantined* (its items leave the
//     sweep array and the freelist, so recycling cannot re-warm it),
//     and after a grace period of further inspections its pages are
//     returned to the OS (arena::release_chunk_pages).  The virtual
//     range stays mapped — type stability holds, stragglers read zero
//     pages (version 0 = even = dead, every stale take fails).  When
//     demand returns, quarantined chunks are revived for free and
//     released chunks refault with every item's version restored to the
//     chunk's recorded *version floor* (an even value >= every version
//     the chunk ever held), preserving the monotone-version ABA
//     defense across the zeroing.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "klsm/item.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/arena.hpp"
#include "mm/placement.hpp"
#include "mm/reclaim/config.hpp"
#include "mm/reclaim/freelist.hpp"
#include "trace/tracer.hpp"

namespace klsm {

template <typename K, typename V>
class item_pool {
public:
    /// Max items inspected by the reuse sweep per allocation.  Small
    /// enough to be O(1), large enough to find a reusable item with high
    /// probability in steady state (where roughly half of all slots are
    /// logically deleted).
    static constexpr std::size_t sweep_budget = 32;

    using freelist_type = mm::reclaim::tagged_freelist<item<K, V>>;

    /// `place` governs where the arena's chunk pages live and which
    /// reclamation mechanisms are on (mm/placement.hpp); the default is
    /// the historical plain heap allocation with reclamation off.
    explicit item_pool(mm::mem_placement place = {})
        : arena_(256, place, &stats_), reclaim_(place.reclaim) {}
    item_pool(const item_pool &) = delete;
    item_pool &operator=(const item_pool &) = delete;

    /// Allocate an item carrying (key, value); returns the reference
    /// (pointer + expected version + cached key) to store in blocks.
    item_ref<K, V> allocate(const K &key, const V &value) {
        item<K, V> *it = nullptr;
        if (reclaim_.freelist_enabled())
            it = pop_recycled();
        if (it == nullptr) {
            it = find_reusable();
            if (it != nullptr)
                stats_.count_reuse_hit();
        }
        if (it == nullptr && reclaim_.shrink_enabled())
            it = revive_cold_chunk();
        if (it == nullptr) {
            stats_.count_fresh();
            it = arena_.allocate();
            if (reclaim_.freelist_enabled())
                it->attach_reclaim_sink(freelist_.sink_word());
            all_.push_back(it);
        }
        // Publish BEFORE maintenance: the inspection must see this item
        // alive, or it could quarantine (and later zero) the chunk that
        // holds the item we are about to hand out.  This ordering is
        // what makes "inactive chunks are all-dead" an invariant, which
        // reactivate_chunk relies on.
        const std::uint64_t version = it->publish(key, value);
        if (reclaim_.shrink_enabled() &&
            ++allocs_since_maintenance_ >= reclaim_.maintenance_period) {
            allocs_since_maintenance_ = 0;
            maintenance_step();
        }
        return {it, version, key};
    }

    /// Shrink every cold chunk right now, bypassing the grace period.
    /// PRECONDITION: no concurrent operations on the owning queue — the
    /// same quiescence the residency walk already requires.  Without
    /// in-flight deleters there are no ghost freelist pushers, so the
    /// grace period protects nothing.  Returns the number of chunks
    /// whose pages were released.
    std::size_t quiescent_shrink() {
        if (!reclaim_.shrink_enabled())
            return 0;
        sync_chunk_state();
        std::size_t released = 0;
        for (std::size_t c = 0; c < chunk_state_.size(); ++c) {
            chunk_rec &rec = chunk_state_[c];
            if (rec.st == chunk_rec::active) {
                std::uint64_t floor = 0;
                if (!chunk_fully_reusable(c, floor))
                    continue;
                quarantine_chunk(c, floor);
            }
            if (rec.st == chunk_rec::quarantined &&
                try_release_chunk(c))
                ++released;
        }
        return released;
    }

    /// Total items currently in circulation (live + sweep-reusable);
    /// quarantined and released chunks' items are excluded until their
    /// chunk is revived.
    std::size_t capacity() const { return all_.size(); }

    /// Allocation-placement telemetry (owner increments, any thread may
    /// snapshot; see mm/alloc_stats.hpp).
    const mm::alloc_counters &stats() const { return stats_; }
    const mm::mem_placement &placement() const {
        return arena_.placement();
    }
    const mm::reclaim_config &reclaim_config() const { return reclaim_; }
    const freelist_type &freelist() const { return freelist_; }
    /// Mutable freelist access for deleters acting on behalf of this
    /// pool (and for tests emulating ghost pushers).
    freelist_type &freelist() { return freelist_; }

    /// Chunk-lifecycle census (test/diagnostic helper; owner-only).
    struct chunk_census {
        std::size_t active = 0;
        std::size_t quarantined = 0;
        std::size_t released = 0;
    };
    chunk_census census() const {
        chunk_census out;
        for (const chunk_rec &rec : chunk_state_) {
            if (rec.st == chunk_rec::active)
                ++out.active;
            else if (rec.st == chunk_rec::quarantined)
                ++out.quarantined;
            else
                ++out.released;
        }
        return out;
    }

    /// Walk the arena's chunk regions for the residency query
    /// (quiescent-only).
    template <typename F>
    void for_each_region(F &&f) const {
        arena_.for_each_region(f);
    }

private:
    struct chunk_rec {
        enum state : std::uint8_t { active, quarantined, released };
        state st = active;
        std::uint32_t cold_inspections = 0;
        /// Even version >= every version any item of the chunk held at
        /// quarantine time; restored on reactivation after a release.
        std::uint64_t version_floor = 0;
    };

    item<K, V> *pop_recycled() {
        for (std::size_t i = 0; i < sweep_budget; ++i) {
            item<K, V> *it = freelist_.pop();
            if (it == nullptr)
                return nullptr;
            // Ghost pushes can deliver items from chunks that went
            // cold, or items a sweep already republished: discard.
            if (!it->reusable() || item_in_inactive_chunk(it)) {
                stats_.count_freelist_drop();
                continue;
            }
            stats_.count_freelist_hit();
            return it;
        }
        return nullptr;
    }

    item<K, V> *find_reusable() {
        const std::size_t n = all_.size();
        if (n == 0)
            return nullptr;
        std::size_t budget = sweep_budget < n ? sweep_budget : n;
        while (budget-- > 0) {
            if (cursor_ >= n)
                cursor_ = 0;
            item<K, V> *it = all_[cursor_++];
            // Skip items a deleter already parked on the freelist —
            // republishing one here would leave a live item linked.
            if (it->reusable() && !it->freelist_linked())
                return it;
        }
        return nullptr;
    }

    bool item_in_inactive_chunk(const item<K, V> *it) const {
        for (std::size_t c = 0; c < chunk_state_.size(); ++c)
            if (chunk_state_[c].st != chunk_rec::active &&
                arena_.chunk_contains(c, it))
                return true;
        return false;
    }

    /// Extend the lifecycle vector to cover newly-filled chunks (the
    /// arena's last, still-filling chunk is never tracked: it takes
    /// fresh allocations and can't be cold).
    void sync_chunk_state() {
        std::size_t full = arena_.chunk_count();
        if (full > 0 && !arena_.chunk_full(full - 1))
            --full;
        while (chunk_state_.size() < full)
            chunk_state_.push_back({});
    }

    void maintenance_step() {
        sync_chunk_state();
        const std::size_t nc = chunk_state_.size();
        if (nc == 0)
            return;
        if (maintenance_cursor_ >= nc)
            maintenance_cursor_ = 0;
        inspect_chunk(maintenance_cursor_++);
    }

    void inspect_chunk(std::size_t c) {
        chunk_rec &rec = chunk_state_[c];
        switch (rec.st) {
        case chunk_rec::active: {
            std::uint64_t floor = 0;
            if (chunk_fully_reusable(c, floor))
                quarantine_chunk(c, floor);
            break;
        }
        case chunk_rec::quarantined:
            if (++rec.cold_inspections >= reclaim_.grace_inspections)
                try_release_chunk(c);
            break;
        case chunk_rec::released:
            break;
        }
    }

    /// All items dead?  Sound under concurrency: only the owner (us)
    /// can flip a version even->odd (publish), so an all-even
    /// observation cannot be invalidated mid-scan.  Also computes the
    /// chunk's version floor (max version; even because all observed
    /// versions are even).
    bool chunk_fully_reusable(std::size_t c, std::uint64_t &floor) {
        item<K, V> *base = arena_.chunk_data(c);
        const std::size_t n = arena_.chunk_used(c);
        std::uint64_t max_v = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!base[i].reusable())
                return false;
            const std::uint64_t v = base[i].version();
            if (v > max_v)
                max_v = v;
        }
        floor = max_v;
        return true;
    }

    /// Take chunk `c` out of circulation: filter its items out of the
    /// freelist chain and the sweep array.  Ghost pushers may re-link
    /// individual items afterwards; those ghosts land in released pages
    /// at worst (benign refault) and are discarded by pop validation.
    void quarantine_chunk(std::size_t c, std::uint64_t floor) {
        drain_freelist_excluding(c);
        item<K, V> *base = arena_.chunk_data(c);
        item<K, V> *end = base + arena_.chunk_used(c);
        all_.erase(std::remove_if(all_.begin(), all_.end(),
                                  [base, end](item<K, V> *p) {
                                      return p >= base && p < end;
                                  }),
                   all_.end());
        cursor_ = 0;
        chunk_rec &rec = chunk_state_[c];
        rec.st = chunk_rec::quarantined;
        rec.cold_inspections = 0;
        rec.version_floor = floor;
        KLSM_TRACE_EVENT(trace::kind::reclaim_quarantine, c,
                         arena_.chunk_bytes(c));
    }

    /// Release a quarantined chunk's pages.  Re-filters the freelist
    /// first: ghosts may have linked chunk items since quarantine, and
    /// madvise must never zero a node the live chain routes through.
    bool try_release_chunk(std::size_t c) {
        drain_freelist_excluding(c);
        if (!arena_.release_chunk_pages(c))
            return false; // platform refused; stays quarantined
        chunk_state_[c].st = chunk_rec::released;
        KLSM_TRACE_EVENT(trace::kind::reclaim_release, c,
                         arena_.chunk_bytes(c));
        return true;
    }

    /// Swap-drain the freelist and push back everything that is not in
    /// chunk `c` (and not in any other inactive chunk), fixing up each
    /// kept node's link word.  Owner-only.
    void drain_freelist_excluding(std::size_t c) {
        if (!reclaim_.freelist_enabled())
            return;
        item<K, V> *x = freelist_.detach_all();
        std::vector<item<K, V> *> keep;
        while (x != nullptr) {
            item<K, V> *next = freelist_type::linked_next(x);
            const bool in_chunk = arena_.chunk_contains(c, x);
            // Unlink: back to attached-unlinked state either way; kept
            // nodes are re-pushed below.
            x->attach_reclaim_sink(freelist_.sink_word());
            if (!in_chunk && !item_in_inactive_chunk(x))
                keep.push_back(x);
            x = next;
        }
        for (std::size_t i = keep.size(); i-- > 0;)
            freelist_.push(keep[i]);
    }

    /// Bring a cold chunk back into service when demand returns and the
    /// sweep found nothing.  Quarantined chunks (storage intact) are
    /// preferred over released ones (refault + version-floor restore).
    /// Returns one of the revived chunk's items, or nullptr.
    item<K, V> *revive_cold_chunk() {
        sync_chunk_state();
        std::size_t candidate = chunk_state_.size();
        for (std::size_t c = 0; c < chunk_state_.size(); ++c) {
            if (chunk_state_[c].st == chunk_rec::quarantined) {
                candidate = c;
                break;
            }
            if (chunk_state_[c].st == chunk_rec::released &&
                candidate == chunk_state_.size())
                candidate = c;
        }
        if (candidate == chunk_state_.size())
            return nullptr;
        return reactivate_chunk(candidate);
    }

    item<K, V> *reactivate_chunk(std::size_t c) {
        // Filter any ghost-linked items of this chunk out of the chain
        // before rewriting their words (severing a chain mid-node would
        // strand its tail).
        drain_freelist_excluding(c);
        chunk_rec &rec = chunk_state_[c];
        item<K, V> *base = arena_.chunk_data(c);
        const std::size_t n = arena_.chunk_used(c);
        const std::uintptr_t sink =
            reclaim_.freelist_enabled() ? freelist_.sink_word() : 0;
        const bool was_released = rec.st == chunk_rec::released;
        for (std::size_t i = 0; i < n; ++i) {
            if (was_released)
                base[i].reset_after_reclaim(rec.version_floor, sink);
            else
                base[i].attach_reclaim_sink(sink);
            all_.push_back(&base[i]);
        }
        if (was_released)
            arena_.note_chunk_reactivated(c);
        // Point the sweep at the revived items.
        cursor_ = all_.size() - n;
        rec.st = chunk_rec::active;
        rec.cold_inspections = 0;
        return base;
    }

    mm::alloc_counters stats_; ///< declared before arena_ (ctor order)
    arena<item<K, V>> arena_;
    std::vector<item<K, V> *> all_;
    std::size_t cursor_ = 0;
    mm::reclaim_config reclaim_;
    freelist_type freelist_;
    std::vector<chunk_rec> chunk_state_;
    std::size_t maintenance_cursor_ = 0;
    std::uint32_t allocs_since_maintenance_ = 0;
};

} // namespace klsm
