#pragma once

// Wait-free item reuse pool (paper Section 4.4).
//
// Each thread owns one pool per queue.  Storage is type-stable (arena):
// item addresses remain valid for the queue's lifetime, so stale
// references held in blocks anywhere in the system are always safe to
// dereference and are rejected by the version check in item::take.
//
// Reuse policy: an item becomes reusable the moment its version turns
// even (logically deleted), even if blocks still reference it — the
// monotone version counter makes such references harmless.  The pool finds
// reusable items with an amortized-O(1) cyclic sweep over its own items;
// if the bounded sweep finds nothing (queue mostly full of live items) it
// falls back to fresh arena allocation, so allocation never blocks on the
// behaviour of other threads (wait-free).

#include <cstdint>
#include <vector>

#include "klsm/item.hpp"
#include "mm/alloc_stats.hpp"
#include "mm/arena.hpp"
#include "mm/placement.hpp"

namespace klsm {

template <typename K, typename V>
class item_pool {
public:
    /// Max items inspected by the reuse sweep per allocation.  Small
    /// enough to be O(1), large enough to find a reusable item with high
    /// probability in steady state (where roughly half of all slots are
    /// logically deleted).
    static constexpr std::size_t sweep_budget = 32;

    /// `place` governs where the arena's chunk pages live
    /// (mm/placement.hpp); the default is the historical plain heap
    /// allocation.
    explicit item_pool(mm::mem_placement place = {})
        : arena_(256, place, &stats_) {}
    item_pool(const item_pool &) = delete;
    item_pool &operator=(const item_pool &) = delete;

    /// Allocate an item carrying (key, value); returns the reference
    /// (pointer + expected version + cached key) to store in blocks.
    item_ref<K, V> allocate(const K &key, const V &value) {
        item<K, V> *it = find_reusable();
        if (it == nullptr) {
            stats_.count_fresh();
            it = arena_.allocate();
            all_.push_back(it);
        } else {
            stats_.count_reuse_hit();
        }
        const std::uint64_t version = it->publish(key, value);
        return {it, version, key};
    }

    /// Total items ever created by this pool (live + reusable).
    std::size_t capacity() const { return all_.size(); }

    /// Allocation-placement telemetry (owner increments, any thread may
    /// snapshot; see mm/alloc_stats.hpp).
    const mm::alloc_counters &stats() const { return stats_; }
    const mm::mem_placement &placement() const {
        return arena_.placement();
    }

    /// Walk the arena's chunk regions for the residency query
    /// (quiescent-only).
    template <typename F>
    void for_each_region(F &&f) const {
        arena_.for_each_region(f);
    }

private:
    item<K, V> *find_reusable() {
        const std::size_t n = all_.size();
        if (n == 0)
            return nullptr;
        std::size_t budget = sweep_budget < n ? sweep_budget : n;
        while (budget-- > 0) {
            if (cursor_ >= n)
                cursor_ = 0;
            item<K, V> *it = all_[cursor_++];
            if (it->reusable())
                return it;
        }
        return nullptr;
    }

    mm::alloc_counters stats_; ///< declared before arena_ (ctor order)
    arena<item<K, V>> arena_;
    std::vector<item<K, V> *> all_;
    std::size_t cursor_ = 0;
};

} // namespace klsm
