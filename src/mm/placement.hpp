#pragma once

// NUMA-aware page placement for the type-stable pools.
//
// The paper's manual memory scheme (Section 4.4) makes blocks and items
// type-stable, but says nothing about *where* their pages live.  On a
// multi-socket machine that matters more than any queue tweak: a
// numa_klsm shard pinned to node 1 whose blocks were first-touched on
// node 0 pays a cross-node round trip on every entry it reads (the
// k-LSM follow-up benchmarking study, arXiv:1603.05047, attributes the
// large high-thread-count swings to exactly this).  This header is the
// placement primitive the pools build on:
//
//   * a `mem_placement` policy threaded through every pool constructor
//     (none | bind | firsttouch) naming a target NUMA node,
//   * page-granular allocation (`placed_array`) that pre-faults each
//     chunk and, under `bind`, pins its pages to the target node with
//     mbind(2) before the first touch,
//   * a `move_pages(2)` residency query so telemetry can report where
//     the pages actually ended up (mm/alloc_stats.hpp).
//
// Everything degrades gracefully: on non-Linux platforms, in seccomp'd
// containers that reject the syscalls, or for nodes that do not exist,
// `bind` silently decays to pre-faulted local allocation and the
// telemetry records that no chunk was bound.  The syscalls are invoked
// directly (stable kernel ABI constants below) so no libnuma dependency
// is introduced.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "mm/reclaim/config.hpp"

namespace klsm::mm {

/// Where a pool's backing pages should live.
///   none       — plain heap allocation, wherever the allocator and the
///                kernel's default policy put it (the pre-PR behavior).
///   bind       — mbind the chunk's pages to the target node before the
///                first touch; falls back to `firsttouch` when mbind is
///                unavailable or refuses.
///   firsttouch — pre-fault every page from the allocating thread, so
///                pages land on the node that thread runs on (correct
///                placement whenever the owner allocates from its home
///                node, which is how the sharded queue routes inserts).
enum class numa_alloc_policy : std::uint8_t { none, bind, firsttouch };

inline const char *numa_alloc_policy_name(numa_alloc_policy p) {
    switch (p) {
    case numa_alloc_policy::none: return "none";
    case numa_alloc_policy::bind: return "bind";
    case numa_alloc_policy::firsttouch: return "firsttouch";
    }
    return "none";
}

inline std::optional<numa_alloc_policy>
parse_numa_alloc_policy(const std::string &s) {
    if (s == "none")
        return numa_alloc_policy::none;
    if (s == "bind")
        return numa_alloc_policy::bind;
    if (s == "firsttouch")
        return numa_alloc_policy::firsttouch;
    return std::nullopt;
}

/// The placement a pool (and its arena chunks) should use.  Value type,
/// threaded through item_pool / block_pool / dist_lsm / shared_lsm /
/// k_lsm construction; numa_klsm builds one per shard with that shard's
/// node.
struct mem_placement {
    numa_alloc_policy policy = numa_alloc_policy::none;
    /// Target NUMA node (OS node id) for `bind`; ignored otherwise.
    std::uint32_t node = 0;
    /// Back chunks of at least huge_page_bytes with explicit huge pages
    /// (MAP_HUGETLB), decaying to transparent-huge-page advice
    /// (madvise MADV_HUGEPAGE), then to normal pages — each fallback
    /// silent but visible in the chunk_placement telemetry.
    bool huge_pages = false;
    /// Reclamation-tier settings shared by every pool built from this
    /// placement (src/mm/reclaim/).  Riding inside mem_placement means
    /// no queue-layer constructor changes shape.
    reclaim::reclaim_config reclaim{};

    friend bool operator==(const mem_placement &,
                           const mem_placement &) = default;
};

/// Explicit huge-page size attempted for MAP_HUGETLB chunks (the x86-64
/// default; chunks smaller than this only ever get THP advice).
inline constexpr std::size_t huge_page_bytes = 2u << 20;

inline std::size_t page_size() {
#if defined(__linux__)
    static const std::size_t ps = [] {
        const long v = ::sysconf(_SC_PAGESIZE);
        return v > 0 ? static_cast<std::size_t>(v) : 4096;
    }();
    return ps;
#else
    return 4096;
#endif
}

// Kernel ABI constants (include/uapi/linux/mempolicy.h).  Spelled out
// here instead of including the uapi header so the build does not
// depend on kernel headers being installed.
inline constexpr int mpol_bind = 2;            // MPOL_BIND
inline constexpr unsigned mpol_mf_move = 1u << 1; // MPOL_MF_MOVE
/// Upper bound on node ids we can express in the mbind nodemask.
inline constexpr std::uint32_t max_bindable_node = 1023;

/// Bind `[p, p + bytes)` to `node` with mbind(2).  Returns true iff the
/// kernel accepted the policy; false on non-Linux platforms, filtered
/// syscalls, or nonexistent nodes — callers treat false as "fall back
/// to first-touch".
inline bool bind_region_to_node(void *p, std::size_t bytes,
                                std::uint32_t node) {
#if defined(__linux__) && defined(SYS_mbind)
    if (node > max_bindable_node)
        return false;
    constexpr std::size_t bits_per_word = 8 * sizeof(unsigned long);
    unsigned long mask[(max_bindable_node + 1) / bits_per_word] = {};
    mask[node / bits_per_word] = 1ul << (node % bits_per_word);
    // maxnode counts bits and the kernel wants one past the highest.
    const long rc = ::syscall(SYS_mbind, p, bytes, mpol_bind, mask,
                              static_cast<unsigned long>(
                                  max_bindable_node + 2),
                              mpol_mf_move);
    return rc == 0;
#else
    (void)p;
    (void)bytes;
    (void)node;
    return false;
#endif
}

/// True iff this platform can answer "which node is this page on"
/// (move_pages(2) in query mode).  A true return still allows the
/// per-call query to fail at runtime; failed pages land in the
/// histogram's `unknown` bucket.
inline bool residency_query_supported() {
#if defined(__linux__) && defined(SYS_move_pages)
    return true;
#else
    return false;
#endif
}

/// Pages-per-node counts accumulated over one or more regions.  Node
/// ids index a dense vector (they are small in practice); pages whose
/// node could not be determined (not yet faulted, query error) count as
/// `unknown`.
class resident_histogram {
public:
    void add(std::uint32_t node, std::uint64_t pages = 1) {
        if (node >= counts_.size())
            counts_.resize(node + 1, 0);
        counts_[node] += pages;
    }
    void add_unknown(std::uint64_t pages = 1) { unknown_ += pages; }

    void merge(const resident_histogram &o) {
        for (std::uint32_t n = 0; n < o.counts_.size(); ++n)
            if (o.counts_[n])
                add(n, o.counts_[n]);
        unknown_ += o.unknown_;
    }

    std::uint64_t pages_on(std::uint32_t node) const {
        return node < counts_.size() ? counts_[node] : 0;
    }
    std::uint64_t unknown_pages() const { return unknown_; }
    std::uint64_t total_pages() const {
        std::uint64_t t = unknown_;
        for (const auto c : counts_)
            t += c;
        return t;
    }
    bool empty() const { return total_pages() == 0; }

    /// (node, pages) pairs for nodes with at least one page, ascending.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs() const {
        std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
        for (std::uint32_t n = 0; n < counts_.size(); ++n)
            if (counts_[n])
                out.emplace_back(n, counts_[n]);
        return out;
    }

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t unknown_ = 0;
};

/// Ask the kernel which node each page of `[p, p + bytes)` resides on
/// and accumulate into `out`.  Returns false when the platform cannot
/// answer at all (the histogram is untouched then).  Addresses are
/// rounded down to page boundaries; the kernel reports -ENOENT for
/// pages that were never faulted, which count as unknown.
inline bool query_resident_nodes(const void *p, std::size_t bytes,
                                 resident_histogram &out) {
#if defined(__linux__) && defined(SYS_move_pages)
    if (bytes == 0)
        return true;
    const std::size_t ps = page_size();
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t first = addr - (addr % ps);
    const std::size_t pages = (addr + bytes - first + ps - 1) / ps;
    constexpr std::size_t batch = 256;
    void *page_ptrs[batch];
    int status[batch];
    for (std::size_t done = 0; done < pages;) {
        const std::size_t n = pages - done < batch ? pages - done : batch;
        for (std::size_t i = 0; i < n; ++i)
            page_ptrs[i] =
                reinterpret_cast<void *>(first + (done + i) * ps);
        const long rc = ::syscall(SYS_move_pages, 0,
                                  static_cast<unsigned long>(n), page_ptrs,
                                  nullptr, status, 0);
        if (rc != 0) {
            out.add_unknown(pages - done);
            return true;
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (status[i] >= 0)
                out.add(static_cast<std::uint32_t>(status[i]));
            else
                out.add_unknown();
        }
        done += n;
    }
    return true;
#else
    (void)p;
    (void)bytes;
    (void)out;
    return false;
#endif
}

/// How one chunk's pages were actually placed (telemetry feedback from
/// placed_array::allocate).
struct chunk_placement {
    bool bound = false;      ///< mbind accepted the target node
    bool prefaulted = false; ///< pages were touched at allocation time
    bool huge = false;       ///< backed by explicit MAP_HUGETLB pages
    bool thp = false;        ///< MADV_HUGEPAGE advice applied (THP)
};

/// A default-constructed T[n] whose backing pages follow a
/// mem_placement.  The `none` policy (with reclamation and huge pages
/// off) is byte-for-byte the pre-existing behavior (one operator
/// new[] — same allocator, same touch pattern); otherwise the array
/// allocates page-granular raw storage — mmap(MAP_HUGETLB) when huge
/// pages were requested and granted, page-aligned operator new else —
/// applies the policy, pre-faults, then constructs the elements in
/// place.  Pool shrink forces the page-granular path even under
/// `none`, because only whole placed regions can be madvise'd away
/// without touching neighboring heap objects.  Move-only; elements
/// never move after allocation (type stability).
template <typename T>
class placed_array {
    static_assert(std::is_nothrow_default_constructible_v<T>,
                  "placed_array elements are constructed in bulk");

public:
    placed_array() = default;
    placed_array(const placed_array &) = delete;
    placed_array &operator=(const placed_array &) = delete;

    placed_array(placed_array &&o) noexcept
        : data_(std::exchange(o.data_, nullptr)),
          raw_(std::exchange(o.raw_, nullptr)),
          count_(std::exchange(o.count_, 0)),
          bytes_(std::exchange(o.bytes_, 0)),
          kind_(std::exchange(o.kind_, storage_kind::heap)),
          how_(o.how_) {}

    placed_array &operator=(placed_array &&o) noexcept {
        if (this != &o) {
            destroy();
            data_ = std::exchange(o.data_, nullptr);
            raw_ = std::exchange(o.raw_, nullptr);
            count_ = std::exchange(o.count_, 0);
            bytes_ = std::exchange(o.bytes_, 0);
            kind_ = std::exchange(o.kind_, storage_kind::heap);
            how_ = o.how_;
        }
        return *this;
    }

    ~placed_array() { destroy(); }

    static placed_array allocate(std::size_t n,
                                 const mem_placement &place) {
        placed_array out;
        out.count_ = n;
        if (n == 0)
            return out;
        const bool want_paged = place.policy != numa_alloc_policy::none ||
                                place.huge_pages ||
                                place.reclaim.shrink_enabled();
        if (!want_paged) {
            out.data_ = new T[n]();
            out.bytes_ = n * sizeof(T);
            return out;
        }
        const std::size_t ps = page_size();
        out.bytes_ = ((n * sizeof(T) + ps - 1) / ps) * ps;
#if defined(__linux__) && defined(MAP_HUGETLB)
        if (place.huge_pages && n * sizeof(T) >= huge_page_bytes) {
            const std::size_t hb =
                ((n * sizeof(T) + huge_page_bytes - 1) / huge_page_bytes) *
                huge_page_bytes;
            void *m = ::mmap(nullptr, hb, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB,
                             -1, 0);
            if (m != MAP_FAILED) {
                out.raw_ = m;
                out.bytes_ = hb;
                out.kind_ = storage_kind::mapped;
                out.how_.huge = true;
            }
            // No reserved huge pages (the common case): decay to the
            // normal path below, which asks for THP instead.
        }
#endif
        if (out.raw_ == nullptr) {
            out.raw_ = ::operator new(out.bytes_, std::align_val_t{ps});
            out.kind_ = storage_kind::aligned;
#if defined(__linux__) && defined(MADV_HUGEPAGE)
            if (place.huge_pages)
                out.how_.thp =
                    ::madvise(out.raw_, out.bytes_, MADV_HUGEPAGE) == 0;
#endif
        }
        if (place.policy == numa_alloc_policy::bind)
            out.how_.bound =
                bind_region_to_node(out.raw_, out.bytes_, place.node);
        // First touch: fault every page in from this thread.  Under
        // `bind` the pages obey the mbind policy regardless of where
        // this thread runs; under `firsttouch` they land on this
        // thread's node — which is the target node whenever the owner
        // allocates from its home node.  The mbind VMA policy also
        // outlives a later MADV_DONTNEED, so pages a shrink released
        // refault back onto the bound node when the chunk regrows.
        std::memset(out.raw_, 0, out.bytes_);
        out.how_.prefaulted = true;
        T *d = static_cast<T *>(out.raw_);
        for (std::size_t i = 0; i < n; ++i)
            new (d + i) T();
        out.data_ = d;
        return out;
    }

    T *get() const { return data_; }
    T &operator[](std::size_t i) const { return data_[i]; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /// Byte footprint of the allocation (page-rounded for placed
    /// storage), the unit the telemetry counts.
    std::size_t bytes() const { return bytes_; }
    /// Start of the region for residency queries (page-aligned for
    /// placed storage).
    const void *region() const { return raw_ ? raw_ : data_; }
    /// True iff the storage is page-granular placed storage.  Only
    /// such regions are meaningful residency-query targets: a plain
    /// `new T[]` allocation shares heap pages with unrelated objects,
    /// so per-page attribution would double-count pages spanned by
    /// adjacent allocations.
    bool page_managed() const { return raw_ != nullptr; }
    chunk_placement how_placed() const { return how_; }

private:
    enum class storage_kind : std::uint8_t { heap, aligned, mapped };

    void destroy() {
        if (raw_ != nullptr) {
            for (std::size_t i = count_; i-- > 0;)
                data_[i].~T();
#if defined(__linux__)
            if (kind_ == storage_kind::mapped)
                ::munmap(raw_, bytes_);
            else
#endif
                ::operator delete(raw_, std::align_val_t{page_size()});
        } else {
            delete[] data_;
        }
        data_ = nullptr;
        raw_ = nullptr;
        count_ = 0;
        bytes_ = 0;
        kind_ = storage_kind::heap;
    }

    T *data_ = nullptr;
    void *raw_ = nullptr; ///< non-null iff page-aligned placed storage
    std::size_t count_ = 0;
    std::size_t bytes_ = 0;
    storage_kind kind_ = storage_kind::heap;
    chunk_placement how_{};
};

} // namespace klsm::mm
