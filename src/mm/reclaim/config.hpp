#pragma once

// Configuration for the memory-reclamation tier (src/mm/reclaim/).
//
// This header is intentionally dependency-free: mm/placement.hpp embeds
// a `reclaim_config` inside `mem_placement` so the reclamation settings
// travel with the placement through every pool constructor without
// touching a single queue-layer signature.
//
// Two orthogonal mechanisms, combinable:
//
//   * freelist — a tagged-pointer freelist tier (freelist.hpp) between
//     the pools and their arenas: any thread that takes (deletes) an
//     item pushes it onto the owner's freelist, and the owner pops from
//     it on allocation before falling back to the O(1)-amortized sweep.
//     Hot churn recycles without touching the epoch path.
//
//   * shrink — epoch-style chunk reclamation: when every item in a full
//     arena chunk is observed dead, the chunk is quarantined (removed
//     from circulation), and after a grace period of further
//     maintenance inspections its pages are returned to the OS with
//     madvise(MADV_DONTNEED).  The virtual range stays mapped, so the
//     type-stability invariant the versioned items rely on (paper
//     Section 4.4) is preserved: a straggler reading a reclaimed item
//     faults in a zero page, sees version 0 (even = dead), and fails
//     its CAS exactly as it would against any other freed item.

#include <cstddef>
#include <cstdint>

namespace klsm::mm::reclaim {

enum class reclaim_policy : std::uint8_t {
    none,     ///< seed behavior: pools only grow, sweep-only recycling
    freelist, ///< tagged-pointer freelist tier only
    shrink,   ///< chunk quarantine + madvise shrink only
    full,     ///< freelist + shrink
};

inline const char *reclaim_policy_name(reclaim_policy p) {
    switch (p) {
    case reclaim_policy::none: return "none";
    case reclaim_policy::freelist: return "freelist";
    case reclaim_policy::shrink: return "shrink";
    case reclaim_policy::full: return "full";
    }
    return "?";
}

/// Parse a policy name; returns false (and leaves `out` untouched) on
/// an unknown name.  "auto" is resolved by the caller (bench CLI), not
/// here.
inline bool parse_reclaim_policy(const char *s, reclaim_policy &out) {
    const auto eq = [s](const char *t) {
        const char *a = s;
        while (*a && *t && *a == *t) { ++a; ++t; }
        return *a == '\0' && *t == '\0';
    };
    if (eq("none")) { out = reclaim_policy::none; return true; }
    if (eq("freelist")) { out = reclaim_policy::freelist; return true; }
    if (eq("shrink")) { out = reclaim_policy::shrink; return true; }
    if (eq("full")) { out = reclaim_policy::full; return true; }
    return false;
}

struct reclaim_config {
    reclaim_policy policy = reclaim_policy::none;
    /// A maintenance step (one chunk inspected for quarantine/release)
    /// runs every `maintenance_period` pool allocations.
    std::uint32_t maintenance_period = 512;
    /// Consecutive maintenance inspections a quarantined chunk must
    /// survive before its pages are released.  The grace period lets
    /// in-flight deleters (ghost freelist pushers) finish touching the
    /// chunk under normal operation; quiescent_shrink() bypasses it
    /// because its precondition (no concurrent operations) makes
    /// ghosts impossible.
    std::uint32_t grace_inspections = 2;

    bool freelist_enabled() const {
        return policy == reclaim_policy::freelist ||
               policy == reclaim_policy::full;
    }
    bool shrink_enabled() const {
        return policy == reclaim_policy::shrink ||
               policy == reclaim_policy::full;
    }

    friend bool operator==(const reclaim_config &,
                           const reclaim_config &) = default;
};

} // namespace klsm::mm::reclaim

namespace klsm::mm {
// Convenience aliases: the rest of the tree spells these mm::.
using reclaim::reclaim_config;
using reclaim::reclaim_policy;
} // namespace klsm::mm
