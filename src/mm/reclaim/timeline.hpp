#pragma once

// memory_timeline — RSS + pool high-water telemetry over time.
//
// The churn soak harness (src/harness/churn.hpp) samples this during
// and between workload phases; the JSON emitted here is validated by
// scripts/check_memory_schema.py and diffed by scripts/compare_bench.py
// (RSS high-water regressions are enforcing).
//
// The plateau verdict encodes the soak invariant: after the key-range
// phase shifts, final RSS must settle within `plateau_tolerance` of the
// *steady-phase* high-water — not the cumulative peak — or the shrink
// tier is not actually returning the surge memory.
//
// RSS is read from /proc/self/statm.  Under ASan/TSan the allocator
// shadow dominates RSS and the number says nothing about the pools, so
// `rss_reliable` is false and consumers must only enforce the
// pool-byte invariants (the schema checker and compare_bench both
// honor the flag).

#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KLSM_RSS_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#ifndef KLSM_RSS_UNDER_SANITIZER
#define KLSM_RSS_UNDER_SANITIZER 1
#endif
#endif

namespace klsm::mm::reclaim {

/// True when resident-set readings on this build/platform reflect the
/// pools rather than sanitizer shadow (or nothing at all).
inline bool rss_sampling_reliable() {
#if defined(KLSM_RSS_UNDER_SANITIZER)
    return false;
#elif defined(__linux__)
    return true;
#else
    return false;
#endif
}

/// Current resident set size in bytes (0 when unavailable).
inline std::uint64_t current_rss_bytes() {
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long vm_pages = 0, rss_pages = 0;
    const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
    std::fclose(f);
    if (got != 2)
        return 0;
    return static_cast<std::uint64_t>(rss_pages) *
           static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
#else
    return 0;
#endif
}

struct timeline_sample {
    std::uint64_t t_ns = 0;       ///< steady-clock ns since harness start
    std::uint64_t rss_bytes = 0;  ///< whole-process RSS
    std::uint64_t pool_bytes = 0; ///< sum of pool chunk bytes (VA)
    std::uint64_t released_bytes = 0;   ///< currently madvised-away
    std::uint64_t reclaimed_chunks = 0; ///< currently-released chunks
    std::uint64_t shrink_events = 0;    ///< cumulative releases
    std::uint64_t freelist_hits = 0;    ///< cumulative freelist recycles
    std::uint32_t phase = 0; ///< workload phase index at sample time
};

struct timeline_phase_mark {
    std::string name;
    std::uint32_t index = 0;
    unsigned insert_percent = 50;
    bool bursty = false;
    std::uint64_t start_t_ns = 0;
    std::uint64_t end_t_ns = 0;
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t failed_deletes = 0;
};

struct memory_timeline {
    std::vector<timeline_sample> samples;
    std::vector<timeline_phase_mark> phases;
    bool rss_reliable = false;
    double plateau_tolerance = 0.25;

    // Derived in finalize():
    std::uint64_t shrink_events = 0;
    std::uint64_t rss_high_water_bytes = 0;
    std::uint64_t steady_rss_high_water_bytes = 0;
    std::uint64_t final_rss_bytes = 0;
    std::uint64_t pool_high_water_bytes = 0;
    double plateau_ratio = 0.0;
    bool plateau_ok = false;

    /// Compute the derived verdict fields.  `steady_phase` names the
    /// phase whose high-water is the plateau reference (the first
    /// steady phase, before any key-range shift).
    void finalize(std::uint32_t steady_phase = 0) {
        rss_high_water_bytes = 0;
        steady_rss_high_water_bytes = 0;
        pool_high_water_bytes = 0;
        for (const timeline_sample &s : samples) {
            if (s.rss_bytes > rss_high_water_bytes)
                rss_high_water_bytes = s.rss_bytes;
            if (s.phase == steady_phase &&
                s.rss_bytes > steady_rss_high_water_bytes)
                steady_rss_high_water_bytes = s.rss_bytes;
            if (s.pool_bytes > pool_high_water_bytes)
                pool_high_water_bytes = s.pool_bytes;
        }
        final_rss_bytes = samples.empty() ? 0 : samples.back().rss_bytes;
        shrink_events = samples.empty() ? 0 : samples.back().shrink_events;
        plateau_ratio =
            steady_rss_high_water_bytes == 0
                ? 0.0
                : static_cast<double>(final_rss_bytes) /
                      static_cast<double>(steady_rss_high_water_bytes);
        // The plateau claim is only as meaningful as RSS itself: under
        // sanitizers (or without /proc) the verdict defaults to pass
        // and consumers key off rss_reliable instead.
        plateau_ok =
            !rss_reliable || plateau_ratio <= 1.0 + plateau_tolerance;
    }

    /// Nested JSON object for json_record::set_raw("memory_timeline", ...)
    /// — README "Memory reclamation & soak testing" documents the schema.
    std::string to_json() const {
        std::ostringstream os;
        os << "{\"rss_reliable\":" << (rss_reliable ? "true" : "false")
           << ",\"shrink_events\":" << shrink_events
           << ",\"rss_high_water_bytes\":" << rss_high_water_bytes
           << ",\"steady_rss_high_water_bytes\":"
           << steady_rss_high_water_bytes
           << ",\"final_rss_bytes\":" << final_rss_bytes
           << ",\"pool_high_water_bytes\":" << pool_high_water_bytes
           << ",\"plateau_tolerance\":" << std::setprecision(6)
           << plateau_tolerance
           << ",\"plateau_ratio\":" << std::setprecision(6)
           << plateau_ratio
           << ",\"plateau_ok\":" << (plateau_ok ? "true" : "false")
           << ",\"phases\":[";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const timeline_phase_mark &p = phases[i];
            os << (i ? "," : "") << "{\"index\":" << p.index
               << ",\"name\":\"" << p.name << '"'
               << ",\"insert_percent\":" << p.insert_percent
               << ",\"bursty\":" << (p.bursty ? "true" : "false")
               << ",\"start_t_ns\":" << p.start_t_ns
               << ",\"end_t_ns\":" << p.end_t_ns
               << ",\"inserts\":" << p.inserts
               << ",\"deletes\":" << p.deletes
               << ",\"failed_deletes\":" << p.failed_deletes << '}';
        }
        os << "],\"samples\":[";
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const timeline_sample &s = samples[i];
            os << (i ? "," : "") << "{\"t_ns\":" << s.t_ns
               << ",\"rss_bytes\":" << s.rss_bytes
               << ",\"pool_bytes\":" << s.pool_bytes
               << ",\"released_bytes\":" << s.released_bytes
               << ",\"reclaimed_chunks\":" << s.reclaimed_chunks
               << ",\"shrink_events\":" << s.shrink_events
               << ",\"freelist_hits\":" << s.freelist_hits
               << ",\"phase\":" << s.phase << '}';
        }
        os << "]}";
        return os.str();
    }
};

} // namespace klsm::mm::reclaim
