#pragma once

// Tagged-pointer intrusive freelist — the cheap reclamation tier
// between the item pools and their arenas.
//
// Shape: a Treiber stack with a packed {48-bit pointer, 16-bit tag}
// head (the classic tagged-pointer ABA defense from the lock-free
// queue literature), multi-producer / single-consumer:
//
//   * push (any thread): a deleter that wins an item's version CAS
//     donates the dead item back to the *owning* pool's freelist.
//   * pop (owner only): the pool owner pops on allocation, before
//     falling back to its sweep.
//
// The intrusive link does NOT get its own field.  Each node carries a
// single reclaim word (T::reclaim_word()) whose value space encodes
// the whole lifecycle:
//
//   0            — no sink attached (reclaim tier disabled)
//   sink | 1     — sink attached, node NOT linked (sink is the
//                  freelist's address, >= 4-aligned, so bit 0 tags it)
//   end_sentinel — linked, end of chain (value 2: even, non-null,
//                  never a valid node address)
//   node address — linked, next node in chain (>= 8-aligned)
//
// The push protocol claims linkage by CAS-ing the word from
// `sink | 1` to the next-value.  Exactly one pusher can win that CAS
// per death, which is what makes delayed "ghost" pushers harmless: a
// ghost that lost the race (the item was swept, republished, and even
// died again) either fails the claim or links a node the owner will
// pop, validate (`reusable()` + active-chunk check, done by the pool),
// and discard.  List integrity never depends on version inspection.
//
// Memory ordering: the claim CAS and the head CAS are release-on-
// success so a popping owner acquiring the head observes the node's
// final (dead) state; pops acquire.  The 16-bit head tag increments on
// every successful head CAS, closing the window for the classic
// Treiber A-B-A (node popped and re-pushed between an observer's head
// load and CAS).

#include <atomic>
#include <cstdint>

namespace klsm::mm::reclaim {

template <typename T>
class tagged_freelist {
public:
    /// Link value meaning "linked, end of chain".  Even and too small
    /// to be a node address, so it is disjoint from every other state
    /// of the reclaim word.
    static constexpr std::uintptr_t end_sentinel = 2;

    tagged_freelist() = default;
    tagged_freelist(const tagged_freelist &) = delete;
    tagged_freelist &operator=(const tagged_freelist &) = delete;

    /// The value a node's reclaim word holds while attached to this
    /// list but not linked: the list address with bit 0 set.
    std::uintptr_t sink_word() const {
        return reinterpret_cast<std::uintptr_t>(this) | 1;
    }

    /// True if `w` is a linked-state value (end sentinel or a next
    /// pointer) rather than 0 / an attached sink.
    static bool is_linked_word(std::uintptr_t w) {
        return w != 0 && (w & 1) == 0;
    }

    /// Donate a dead node.  Any thread.  Returns false (and counts a
    /// skip) when the node could not be linked — its reclaim word was
    /// not in the attached-unlinked state (a sweep republished it
    /// first, the pool detached it, or another ghost pusher won), or
    /// its address does not round-trip the 48-bit packing.  A skipped
    /// node is not lost: the owner's sweep still finds it.
    bool push(T *x) {
        const std::uint64_t probe = pack(x, 0);
        if (unpack_ptr(probe) != x) {
            push_skips_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        std::uint64_t h = head_.load(std::memory_order_acquire);
        std::uintptr_t expected = sink_word();
        if (!x->reclaim_word().compare_exchange_strong(
                expected, link_value(h), std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            push_skips_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        // Claimed: we own x's linkage until the head CAS lands.
        for (;;) {
            const std::uint64_t nh = pack(x, unpack_tag(h) + 1);
            if (head_.compare_exchange_weak(h, nh,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
                pushes_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            x->reclaim_word().store(link_value(h),
                                    std::memory_order_relaxed);
        }
    }

    /// Pop one node.  OWNER ONLY — the single-consumer side.  Returns
    /// nullptr when empty.  The popped node's reclaim word is restored
    /// to the attached-unlinked state before it is returned; the
    /// caller must still validate the node (reusable, chunk active)
    /// because ghost pushers may have linked nodes that were since
    /// republished or whose chunk went cold.
    T *pop() {
        std::uint64_t h = head_.load(std::memory_order_acquire);
        for (;;) {
            T *x = unpack_ptr(h);
            if (x == nullptr)
                return nullptr;
            const std::uintptr_t link =
                x->reclaim_word().load(std::memory_order_acquire);
            if (!is_linked_word(link)) {
                // Protocol violation (should be unreachable); fail
                // safe by treating the list as empty rather than
                // chasing a garbage next pointer.
                return nullptr;
            }
            T *next = link == end_sentinel ? nullptr
                                           : reinterpret_cast<T *>(link);
            const std::uint64_t nh = pack(next, unpack_tag(h) + 1);
            if (head_.compare_exchange_weak(h, nh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
                x->reclaim_word().store(sink_word(),
                                        std::memory_order_release);
                return x;
            }
        }
    }

    /// Detach the whole chain with a single exchange and return its
    /// first node (owner only).  Concurrent pushes land on the now-
    /// empty list.  The returned nodes keep their linked-state words;
    /// walk with linked_next() and re-point each word before reuse.
    /// Used by the shrink machinery to filter a cold chunk's nodes out
    /// of the chain without ever madvise-ing memory a live chain
    /// traverses.
    T *detach_all() {
        std::uint64_t h = head_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint64_t nh = pack(nullptr, unpack_tag(h) + 1);
            if (head_.compare_exchange_weak(h, nh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
                return unpack_ptr(h);
        }
    }

    /// Successor of a detached node (nullptr at end of chain or if the
    /// word is not in a linked state).
    static T *linked_next(const T *x) {
        const std::uintptr_t w =
            const_cast<T *>(x)->reclaim_word().load(
                std::memory_order_acquire);
        if (!is_linked_word(w) || w == end_sentinel)
            return nullptr;
        return reinterpret_cast<T *>(w);
    }

    bool empty() const {
        return unpack_ptr(head_.load(std::memory_order_acquire)) ==
               nullptr;
    }

    std::uint64_t pushes() const {
        return pushes_.load(std::memory_order_relaxed);
    }
    std::uint64_t push_skips() const {
        return push_skips_.load(std::memory_order_relaxed);
    }

private:
    static constexpr unsigned ptr_bits = 48;
    static constexpr std::uint64_t ptr_mask =
        (std::uint64_t{1} << ptr_bits) - 1;

    static std::uint64_t pack(T *p, std::uint64_t tag) {
        return (reinterpret_cast<std::uint64_t>(p) & ptr_mask) |
               (tag << ptr_bits);
    }
    static T *unpack_ptr(std::uint64_t w) {
        // Sign-extend bit 47 so kernel-half (and future LAM/five-level)
        // canonical addresses round-trip.
        const std::int64_t shifted =
            static_cast<std::int64_t>(w << (64 - ptr_bits));
        return reinterpret_cast<T *>(shifted >> (64 - ptr_bits));
    }
    static std::uint64_t unpack_tag(std::uint64_t w) {
        return w >> ptr_bits;
    }
    static std::uintptr_t link_value(std::uint64_t head) {
        T *top = unpack_ptr(head);
        return top == nullptr ? end_sentinel
                              : reinterpret_cast<std::uintptr_t>(top);
    }

    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> pushes_{0};
    std::atomic<std::uint64_t> push_skips_{0};
};

} // namespace klsm::mm::reclaim
