#pragma once

// OS-level page release for the pool-shrink tier.
//
// release_pages() hands a cold region's physical pages back to the
// kernel with madvise(MADV_DONTNEED) while leaving the virtual range
// mapped.  That split is load-bearing for the k-LSM's manual memory
// scheme (paper Section 4.4): stragglers may still hold pointers into
// a reclaimed chunk, and the versioned-item protocol only needs those
// pointers to stay *dereferenceable*, not to observe old contents.  A
// read after release faults in a zero page — version 0, even, dead —
// and every take() against it fails exactly as against any freed item.
//
// On non-Linux hosts release_pages() reports failure and the shrink
// machinery simply keeps chunks quarantined (recyclable, never
// released) — graceful decay, no #ifdef in the pools.

#include <cstddef>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace klsm::mm::reclaim {

/// True when this build can actually return pages to the OS.
inline bool release_pages_supported() {
#if defined(__linux__)
    return true;
#else
    return false;
#endif
}

/// Return the physical pages of [p, p + bytes) to the OS, keeping the
/// mapping.  `p` must be page-aligned and `bytes` a multiple of the
/// region's page size (huge-page regions: the huge page size — the
/// pools only release whole placed regions, which satisfy both).
/// Returns false if the platform refused; the caller must then treat
/// the region as still resident.
inline bool release_pages(void *p, std::size_t bytes) {
#if defined(__linux__)
    if (p == nullptr || bytes == 0)
        return false;
    return ::madvise(p, bytes, MADV_DONTNEED) == 0;
#else
    (void)p;
    (void)bytes;
    return false;
#endif
}

} // namespace klsm::mm::reclaim
