#pragma once

// Chunked, type-stable arena.
//
// The k-LSM's manual memory management (paper Section 4.4) hinges on
// *type-stable* storage: once an Item or Block has been allocated, its
// address must stay dereferenceable for the lifetime of the queue, because
// stale pointers to it may be read (and then rejected via version checks)
// at any time.  This arena allocates objects in geometrically growing
// chunks that are never freed or moved until the arena is destroyed, and
// supports iteration over all allocated objects (used by the item pool's
// reuse sweep).

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

namespace klsm {

template <typename T>
class arena {
public:
    explicit arena(std::size_t first_chunk = 64)
        : next_chunk_size_(first_chunk < 1 ? 1 : first_chunk) {}

    arena(const arena &) = delete;
    arena &operator=(const arena &) = delete;

    /// Allocate (default-construct) one more T; never invalidates
    /// previously returned pointers.
    T *allocate() {
        if (chunks_.empty() || used_in_last_ == chunks_.back().size) {
            chunks_.push_back(
                chunk{std::make_unique<T[]>(next_chunk_size_),
                      next_chunk_size_});
            used_in_last_ = 0;
            next_chunk_size_ *= 2;
        }
        return &chunks_.back().data[used_in_last_++];
    }

    std::size_t size() const {
        if (chunks_.empty())
            return 0;
        std::size_t total = 0;
        for (std::size_t i = 0; i + 1 < chunks_.size(); ++i)
            total += chunks_[i].size;
        return total + used_in_last_;
    }

    /// Visit every allocated object.  Order is allocation order.
    template <typename F>
    void for_each(F &&f) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_ : chunks_[c].size;
            for (std::size_t i = 0; i < n; ++i)
                f(chunks_[c].data[i]);
        }
    }

    /// Random access by allocation index (test helper; O(#chunks)).
    T &at(std::size_t index) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_ : chunks_[c].size;
            if (index < n)
                return chunks_[c].data[index];
            index -= n;
        }
        throw std::out_of_range("arena::at");
    }

private:
    struct chunk {
        std::unique_ptr<T[]> data;
        std::size_t size;
    };

    std::vector<chunk> chunks_;
    std::size_t used_in_last_ = 0;
    std::size_t next_chunk_size_;
};

} // namespace klsm
