#pragma once

// Chunked, type-stable arena with optional NUMA placement.
//
// The k-LSM's manual memory management (paper Section 4.4) hinges on
// *type-stable* storage: once an Item or Block has been allocated, its
// address must stay dereferenceable for the lifetime of the queue, because
// stale pointers to it may be read (and then rejected via version checks)
// at any time.  This arena allocates objects in geometrically growing
// chunks that are never freed or moved until the arena is destroyed, and
// supports iteration over all allocated objects (used by the item pool's
// reuse sweep).
//
// Placement: each chunk's backing pages follow the arena's
// `mem_placement` (mm/placement.hpp) — `none` is the historical plain
// heap allocation; `bind`/`firsttouch` page-align, optionally mbind to
// the target node, and pre-fault.  The pools thread a `mem_placement`
// through this constructor directly (item_pool -> arena, block_pool ->
// block entries); `numa_arena` below is the equivalent node-bound
// shorthand for code that uses an arena on its own.  Chunk allocations
// are reported to an optional `alloc_counters` block so placement
// telemetry can prove where the bytes went.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"

namespace klsm {

template <typename T>
class arena {
public:
    explicit arena(std::size_t first_chunk = 64,
                   mm::mem_placement place = {},
                   mm::alloc_counters *stats = nullptr)
        : next_chunk_size_(first_chunk < 1 ? 1 : first_chunk),
          place_(place), stats_(stats) {}

    arena(const arena &) = delete;
    arena &operator=(const arena &) = delete;

    /// Allocate (default-construct) one more T; never invalidates
    /// previously returned pointers.
    T *allocate() {
        if (chunks_.empty() || used_in_last_ == chunks_.back().size()) {
            chunks_.push_back(
                mm::placed_array<T>::allocate(next_chunk_size_, place_));
            if (stats_ != nullptr)
                stats_->count_chunk(chunks_.back().bytes(),
                                    chunks_.back().how_placed());
            used_in_last_ = 0;
            next_chunk_size_ *= 2;
        }
        return &chunks_.back()[used_in_last_++];
    }

    std::size_t size() const {
        if (chunks_.empty())
            return 0;
        std::size_t total = 0;
        for (std::size_t i = 0; i + 1 < chunks_.size(); ++i)
            total += chunks_[i].size();
        return total + used_in_last_;
    }

    const mm::mem_placement &placement() const { return place_; }

    /// Visit every allocated object.  Order is allocation order.
    template <typename F>
    void for_each(F &&f) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_
                                          : chunks_[c].size();
            for (std::size_t i = 0; i < n; ++i)
                f(chunks_[c][i]);
        }
    }

    /// Visit every page-managed chunk's backing region as
    /// (start, bytes) — the residency-telemetry walk.  `none`-policy
    /// chunks are skipped: they share heap pages with unrelated
    /// allocations, so per-page residency attribution would double
    /// count (see placed_array::page_managed).  Quiescent-only: the
    /// chunk vector may grow under a concurrent owner allocation.
    template <typename F>
    void for_each_region(F &&f) const {
        for (const auto &c : chunks_)
            if (c.page_managed())
                f(c.region(), c.bytes());
    }

    /// Random access by allocation index (test helper; O(#chunks)).
    T &at(std::size_t index) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_
                                          : chunks_[c].size();
            if (index < n)
                return chunks_[c][index];
            index -= n;
        }
        throw std::out_of_range("arena::at");
    }

private:
    std::vector<mm::placed_array<T>> chunks_;
    std::size_t used_in_last_ = 0;
    std::size_t next_chunk_size_;
    mm::mem_placement place_;
    mm::alloc_counters *stats_;
};

/// The node-bound arena variant, for standalone arena users (the queue
/// pools pass a mem_placement to arena's own constructor instead):
/// every chunk targets one NUMA node.  With `bind` the pages are
/// mbind()-ed there (works no matter which thread allocates); with
/// `firsttouch` they are pre-faulted by the allocating thread.  Do not
/// delete through the base pointer (neither class is polymorphic).
template <typename T>
class numa_arena : public arena<T> {
public:
    explicit numa_arena(
        std::uint32_t node,
        mm::numa_alloc_policy policy = mm::numa_alloc_policy::bind,
        std::size_t first_chunk = 64,
        mm::alloc_counters *stats = nullptr)
        : arena<T>(first_chunk, mm::mem_placement{policy, node}, stats) {}
};

} // namespace klsm
