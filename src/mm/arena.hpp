#pragma once

// Chunked, type-stable arena with optional NUMA placement.
//
// The k-LSM's manual memory management (paper Section 4.4) hinges on
// *type-stable* storage: once an Item or Block has been allocated, its
// address must stay dereferenceable for the lifetime of the queue, because
// stale pointers to it may be read (and then rejected via version checks)
// at any time.  This arena allocates objects in geometrically growing
// chunks that are never freed or moved until the arena is destroyed, and
// supports iteration over all allocated objects (used by the item pool's
// reuse sweep).
//
// Placement: each chunk's backing pages follow the arena's
// `mem_placement` (mm/placement.hpp) — `none` is the historical plain
// heap allocation; `bind`/`firsttouch` page-align, optionally mbind to
// the target node, and pre-fault.  The pools thread a `mem_placement`
// through this constructor directly (item_pool -> arena, block_pool ->
// block entries); `numa_arena` below is the equivalent node-bound
// shorthand for code that uses an arena on its own.  Chunk allocations
// are reported to an optional `alloc_counters` block so placement
// telemetry can prove where the bytes went.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mm/alloc_stats.hpp"
#include "mm/placement.hpp"
#include "mm/reclaim/shrink.hpp"

namespace klsm {

template <typename T>
class arena {
public:
    explicit arena(std::size_t first_chunk = 64,
                   mm::mem_placement place = {},
                   mm::alloc_counters *stats = nullptr)
        : next_chunk_size_(first_chunk < 1 ? 1 : first_chunk),
          place_(place), stats_(stats) {}

    arena(const arena &) = delete;
    arena &operator=(const arena &) = delete;

    /// Allocate (default-construct) one more T; never invalidates
    /// previously returned pointers.
    T *allocate() {
        if (chunks_.empty() || used_in_last_ == chunks_.back().size()) {
            chunks_.push_back(
                mm::placed_array<T>::allocate(next_chunk_size_, place_));
            if (stats_ != nullptr)
                stats_->count_chunk(chunks_.back().bytes(),
                                    chunks_.back().how_placed());
            used_in_last_ = 0;
            next_chunk_size_ *= 2;
        }
        return &chunks_.back()[used_in_last_++];
    }

    std::size_t size() const {
        if (chunks_.empty())
            return 0;
        std::size_t total = 0;
        for (std::size_t i = 0; i + 1 < chunks_.size(); ++i)
            total += chunks_[i].size();
        return total + used_in_last_;
    }

    const mm::mem_placement &placement() const { return place_; }

    /// Visit every allocated object.  Order is allocation order.
    template <typename F>
    void for_each(F &&f) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_
                                          : chunks_[c].size();
            for (std::size_t i = 0; i < n; ++i)
                f(chunks_[c][i]);
        }
    }

    /// Visit every page-managed chunk's backing region as
    /// (start, bytes) — the residency-telemetry walk.  `none`-policy
    /// chunks are skipped: they share heap pages with unrelated
    /// allocations, so per-page residency attribution would double
    /// count (see placed_array::page_managed).  Quiescent-only: the
    /// chunk vector may grow under a concurrent owner allocation.
    template <typename F>
    void for_each_region(F &&f) const {
        for (const auto &c : chunks_)
            if (c.page_managed())
                f(c.region(), c.bytes());
    }

    // --- Chunk-granular access for the shrink tier (mm/reclaim/) ---
    // Chunks are never removed or reordered, so an index is a stable
    // chunk identity for the pool's lifecycle bookkeeping.

    std::size_t chunk_count() const { return chunks_.size(); }

    T *chunk_data(std::size_t c) { return chunks_[c].get(); }

    /// Objects live in chunk `c` (the last chunk may be part-filled).
    std::size_t chunk_used(std::size_t c) const {
        return c + 1 == chunks_.size() ? used_in_last_
                                       : chunks_[c].size();
    }

    /// True once chunk `c` can take no further fresh allocations.
    bool chunk_full(std::size_t c) const {
        return c + 1 < chunks_.size() ||
               (c + 1 == chunks_.size() &&
                used_in_last_ == chunks_[c].size());
    }

    /// True if `p` points into chunk `c`.
    bool chunk_contains(std::size_t c, const T *p) const {
        const T *base = chunks_[c].get();
        return p >= base && p < base + chunks_[c].size();
    }

    std::size_t chunk_bytes(std::size_t c) const {
        return chunks_[c].bytes();
    }

    bool chunk_page_managed(std::size_t c) const {
        return chunks_[c].page_managed();
    }

    /// Return chunk `c`'s physical pages to the OS (the VA stays
    /// mapped, preserving type stability: later reads see zero pages,
    /// later writes refault real ones).  Owner-only; the caller must
    /// have taken every object in the chunk out of circulation first.
    /// Counts a shrink event.  Returns false when the chunk is not
    /// page-granular or the platform refused.
    bool release_chunk_pages(std::size_t c) {
        auto &ch = chunks_[c];
        if (!ch.page_managed())
            return false;
        if (!mm::reclaim::release_pages(const_cast<void *>(ch.region()),
                                        ch.bytes()))
            return false;
        if (stats_ != nullptr)
            stats_->count_reclaim(ch.bytes());
        return true;
    }

    /// Telemetry note that a released chunk is back in service.
    void note_chunk_reactivated(std::size_t c) {
        if (stats_ != nullptr)
            stats_->count_reactivate(chunks_[c].bytes());
    }

    /// Random access by allocation index (test helper; O(#chunks)).
    T &at(std::size_t index) {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const std::size_t n =
                (c + 1 == chunks_.size()) ? used_in_last_
                                          : chunks_[c].size();
            if (index < n)
                return chunks_[c][index];
            index -= n;
        }
        throw std::out_of_range("arena::at");
    }

private:
    std::vector<mm::placed_array<T>> chunks_;
    std::size_t used_in_last_ = 0;
    std::size_t next_chunk_size_;
    mm::mem_placement place_;
    mm::alloc_counters *stats_;
};

/// The node-bound arena variant, for standalone arena users (the queue
/// pools pass a mem_placement to arena's own constructor instead):
/// every chunk targets one NUMA node.  With `bind` the pages are
/// mbind()-ed there (works no matter which thread allocates); with
/// `firsttouch` they are pre-faulted by the allocating thread.  Do not
/// delete through the base pointer (neither class is polymorphic).
template <typename T>
class numa_arena : public arena<T> {
public:
    explicit numa_arena(
        std::uint32_t node,
        mm::numa_alloc_policy policy = mm::numa_alloc_policy::bind,
        std::size_t first_chunk = 64,
        mm::alloc_counters *stats = nullptr)
        : arena<T>(first_chunk, mm::mem_placement{policy, node}, stats) {}
};

} // namespace klsm
