#pragma once

// Epoch-based memory reclamation (EBR).
//
// Used by the skiplist-based baselines (Lindén & Jonsson, SprayList),
// whose nodes — unlike the k-LSM's type-stable items and blocks — are
// allocated and freed dynamically.  A thread *pins* the current epoch for
// the duration of each operation; retired nodes are freed only after
// every pinned thread has moved past the epoch in which they were
// retired, so no thread can hold a reference to freed memory.
//
// Queue operations under EBR remain lock-free; only *reclamation* can be
// delayed by a stalled thread (see the substitution note in DESIGN.md —
// the k-LSM itself uses the paper's own versioned-reuse scheme and does
// not depend on EBR).
//
// Thread exit / slot recycle: thread ids are dense and *recycled*
// (util/thread_id.hpp), so a slot's limbo list can outlive the thread
// that filled it.  Three guarantees make that safe:
//
//   * advancement never blocks on an exited thread — its pinned word is
//     0, which the advance scan skips;
//   * each slot's limbo list is guarded by a tiny per-slot spin lock
//     (retire is already a slow path next to the pinned-epoch
//     protocol), so an orphan sweep and a fresh owner of a recycled
//     slot can never race on the vector;
//   * a new owner of a recycled slot *adopts* the orphaned limbo —
//     detected via the per-slot generation counter from
//     util/thread_id.hpp — and the epoch tags carried by each retired
//     node keep the (epoch + 2 <= safe) rule exact across the handoff.
//     Slots no live thread occupies are drained by reclaim_orphans()
//     (called from every try_reclaim), so nodes retired by exited
//     threads cannot linger until destruction.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/spin_lock.hpp"
#include "util/thread_id.hpp"

namespace klsm {

class epoch_manager {
public:
    epoch_manager();
    ~epoch_manager();

    epoch_manager(const epoch_manager &) = delete;
    epoch_manager &operator=(const epoch_manager &) = delete;

    /// RAII pin: while alive, no memory retired after construction will
    /// be freed.  Re-entrant (nested guards are counted).
    class guard {
    public:
        explicit guard(epoch_manager &mgr) : mgr_(mgr) { mgr_.pin(); }
        ~guard() { mgr_.unpin(); }
        guard(const guard &) = delete;
        guard &operator=(const guard &) = delete;

    private:
        epoch_manager &mgr_;
    };

    /// Schedule `p` for deletion once all current pins are released.
    /// Must be called while pinned.
    template <typename T>
    void retire(T *p) {
        retire_raw(p, [](void *q) { delete static_cast<T *>(q); });
    }

    void retire_raw(void *p, void (*deleter)(void *));

    /// Total nodes freed so far (diagnostics/tests).
    std::uint64_t freed_count() const {
        return freed_.load(std::memory_order_relaxed);
    }

    /// Nodes retired but not yet freed (diagnostics/tests).
    std::uint64_t pending_count() const;

    /// Times a new owner of a recycled slot found a predecessor's limbo
    /// waiting (diagnostics/tests).
    std::uint64_t limbo_adoptions() const {
        return adoptions_.load(std::memory_order_relaxed);
    }

    /// Current global epoch (diagnostics/tests).
    std::uint64_t current_epoch() const {
        return global_epoch_.load(std::memory_order_acquire);
    }

    /// Force a reclamation attempt: advance if possible, reclaim the
    /// calling thread's slot, then sweep slots no live thread occupies.
    void try_reclaim();

    /// Drain reclaimable nodes from slots whose thread id is not
    /// currently assigned to any live thread.  Safe to call from any
    /// thread at any time (per-slot locking; the epoch rule, not the
    /// ownership check, is what gates each free).
    void reclaim_orphans();

private:
    void pin();
    void unpin();
    bool try_advance();
    void reclaim_slot_locked(std::uint32_t slot);

    struct retired_node {
        void *ptr;
        void (*deleter)(void *);
        std::uint64_t epoch;
    };

    struct slot_state {
        /// Epoch pinned by this slot; 0 = not pinned.  Only the owner
        /// writes; everyone reads during advance scans.
        std::atomic<std::uint64_t> pinned{0};
        /// Nesting depth; owner-only.
        std::uint32_t depth = 0;
        /// Guards `limbo` (and `owner_gen`'s read-modify-write): retire
        /// by the owner vs. orphan sweeps by anyone else.
        spin_lock limbo_lock;
        /// thread_generation() of the last owner to retire through this
        /// slot; 0 = never used.  A mismatch on retire means the slot
        /// was recycled and the limbo is inherited.
        std::uint32_t owner_gen = 0;
        /// Retired-but-not-freed nodes; guarded by limbo_lock.
        std::vector<retired_node> limbo;
    };

    static constexpr std::size_t reclaim_threshold = 128;

    std::atomic<std::uint64_t> global_epoch_{2};
    std::atomic<std::uint64_t> freed_{0};
    std::atomic<std::uint64_t> adoptions_{0};
    cache_aligned<slot_state> slots_[max_registered_threads];
};

} // namespace klsm
