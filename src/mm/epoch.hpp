#pragma once

// Epoch-based memory reclamation (EBR).
//
// Used by the skiplist-based baselines (Lindén & Jonsson, SprayList),
// whose nodes — unlike the k-LSM's type-stable items and blocks — are
// allocated and freed dynamically.  A thread *pins* the current epoch for
// the duration of each operation; retired nodes are freed only after
// every pinned thread has moved past the epoch in which they were
// retired, so no thread can hold a reference to freed memory.
//
// Queue operations under EBR remain lock-free; only *reclamation* can be
// delayed by a stalled thread (see the substitution note in DESIGN.md —
// the k-LSM itself uses the paper's own versioned-reuse scheme and does
// not depend on EBR).

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/thread_id.hpp"

namespace klsm {

class epoch_manager {
public:
    epoch_manager();
    ~epoch_manager();

    epoch_manager(const epoch_manager &) = delete;
    epoch_manager &operator=(const epoch_manager &) = delete;

    /// RAII pin: while alive, no memory retired after construction will
    /// be freed.  Re-entrant (nested guards are counted).
    class guard {
    public:
        explicit guard(epoch_manager &mgr) : mgr_(mgr) { mgr_.pin(); }
        ~guard() { mgr_.unpin(); }
        guard(const guard &) = delete;
        guard &operator=(const guard &) = delete;

    private:
        epoch_manager &mgr_;
    };

    /// Schedule `p` for deletion once all current pins are released.
    /// Must be called while pinned.
    template <typename T>
    void retire(T *p) {
        retire_raw(p, [](void *q) { delete static_cast<T *>(q); });
    }

    void retire_raw(void *p, void (*deleter)(void *));

    /// Total nodes freed so far (diagnostics/tests).
    std::uint64_t freed_count() const {
        return freed_.load(std::memory_order_relaxed);
    }

    /// Nodes retired but not yet freed (diagnostics/tests).
    std::uint64_t pending_count() const;

    /// Force a reclamation attempt (tests).
    void try_reclaim();

private:
    void pin();
    void unpin();
    bool try_advance();
    void reclaim_slot(std::uint32_t slot);

    struct retired_node {
        void *ptr;
        void (*deleter)(void *);
        std::uint64_t epoch;
    };

    struct slot_state {
        /// Epoch pinned by this slot; 0 = not pinned.  Only the owner
        /// writes; everyone reads during advance scans.
        std::atomic<std::uint64_t> pinned{0};
        /// Nesting depth; owner-only.
        std::uint32_t depth = 0;
        /// Retired-but-not-freed nodes; owner-only.
        std::vector<retired_node> limbo;
    };

    static constexpr std::size_t reclaim_threshold = 128;

    std::atomic<std::uint64_t> global_epoch_{2};
    std::atomic<std::uint64_t> freed_{0};
    cache_aligned<slot_state> slots_[max_registered_threads];
};

} // namespace klsm
