#include "mm/epoch.hpp"

namespace klsm {

epoch_manager::epoch_manager() = default;

epoch_manager::~epoch_manager() {
    // No concurrent users may remain; free everything unconditionally.
    for (auto &s : slots_) {
        for (const retired_node &n : s->limbo) {
            n.deleter(n.ptr);
            freed_.fetch_add(1, std::memory_order_relaxed);
        }
        s->limbo.clear();
    }
}

void epoch_manager::pin() {
    slot_state &s = *slots_[thread_index()];
    if (s.depth++ > 0)
        return;
    // The pinned-epoch store must be visible before any subsequent shared
    // read; seq_cst gives us the needed store-load ordering against the
    // advance scan.
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    s.pinned.store(e, std::memory_order_seq_cst);
}

void epoch_manager::unpin() {
    slot_state &s = *slots_[thread_index()];
    if (--s.depth > 0)
        return;
    s.pinned.store(0, std::memory_order_release);
}

void epoch_manager::retire_raw(void *p, void (*deleter)(void *)) {
    const std::uint32_t slot = thread_index();
    slot_state &s = *slots_[slot];
    s.limbo.push_back(
        retired_node{p, deleter,
                     global_epoch_.load(std::memory_order_acquire)});
    if (s.limbo.size() >= reclaim_threshold) {
        try_advance();
        reclaim_slot(slot);
    }
}

bool epoch_manager::try_advance() {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto &s : slots_) {
        const std::uint64_t pinned =
            s->pinned.load(std::memory_order_seq_cst);
        if (pinned != 0 && pinned < e)
            return false; // a thread is still reading in an older epoch
    }
    std::uint64_t expected = e;
    return global_epoch_.compare_exchange_strong(
        expected, e + 1, std::memory_order_acq_rel,
        std::memory_order_relaxed);
}

void epoch_manager::reclaim_slot(std::uint32_t slot) {
    slot_state &s = *slots_[slot];
    const std::uint64_t safe =
        global_epoch_.load(std::memory_order_acquire);
    // A node retired in epoch r may be freed once the global epoch has
    // advanced at least two steps past it: every thread pinned during r
    // has since unpinned or re-pinned at a newer epoch.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < s.limbo.size(); ++i) {
        if (s.limbo[i].epoch + 2 <= safe) {
            s.limbo[i].deleter(s.limbo[i].ptr);
            freed_.fetch_add(1, std::memory_order_relaxed);
        } else {
            s.limbo[kept++] = s.limbo[i];
        }
    }
    s.limbo.resize(kept);
}

std::uint64_t epoch_manager::pending_count() const {
    std::uint64_t n = 0;
    for (const auto &s : slots_)
        n += s->limbo.size();
    return n;
}

void epoch_manager::try_reclaim() {
    try_advance();
    reclaim_slot(thread_index());
}

} // namespace klsm
