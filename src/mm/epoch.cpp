#include "mm/epoch.hpp"

#include <mutex>

#include "trace/tracer.hpp"

namespace klsm {

epoch_manager::epoch_manager() = default;

epoch_manager::~epoch_manager() {
    // No concurrent users may remain; free everything unconditionally.
    for (auto &s : slots_) {
        for (const retired_node &n : s->limbo) {
            n.deleter(n.ptr);
            freed_.fetch_add(1, std::memory_order_relaxed);
        }
        s->limbo.clear();
    }
}

void epoch_manager::pin() {
    slot_state &s = *slots_[thread_index()];
    if (s.depth++ > 0)
        return;
    // The pinned-epoch store must be visible before any subsequent shared
    // read; seq_cst gives us the needed store-load ordering against the
    // advance scan.
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    s.pinned.store(e, std::memory_order_seq_cst);
}

void epoch_manager::unpin() {
    slot_state &s = *slots_[thread_index()];
    if (--s.depth > 0)
        return;
    s.pinned.store(0, std::memory_order_release);
}

void epoch_manager::retire_raw(void *p, void (*deleter)(void *)) {
    const std::uint32_t slot = thread_index();
    slot_state &s = *slots_[slot];
    bool overflow = false;
    {
        std::lock_guard<spin_lock> lock(s.limbo_lock);
        const std::uint32_t gen = thread_generation();
        if (s.owner_gen != gen) {
            // Slot recycled: the previous owner's leftovers (if any)
            // are now ours.  Their epoch tags keep reclamation exact.
            if (!s.limbo.empty())
                adoptions_.fetch_add(1, std::memory_order_relaxed);
            s.owner_gen = gen;
        }
        s.limbo.push_back(
            retired_node{p, deleter,
                         global_epoch_.load(std::memory_order_acquire)});
        overflow = s.limbo.size() >= reclaim_threshold;
    }
    if (overflow) {
        try_advance();
        std::lock_guard<spin_lock> lock(s.limbo_lock);
        reclaim_slot_locked(slot);
    }
}

bool epoch_manager::try_advance() {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto &s : slots_) {
        const std::uint64_t pinned =
            s->pinned.load(std::memory_order_seq_cst);
        if (pinned != 0 && pinned < e)
            return false; // a thread is still reading in an older epoch
    }
    std::uint64_t expected = e;
    const bool advanced = global_epoch_.compare_exchange_strong(
        expected, e + 1, std::memory_order_acq_rel,
        std::memory_order_relaxed);
    if (advanced)
        KLSM_TRACE_EVENT(trace::kind::epoch_advance, 0, e + 1);
    return advanced;
}

void epoch_manager::reclaim_slot_locked(std::uint32_t slot) {
    slot_state &s = *slots_[slot];
    const std::uint64_t safe =
        global_epoch_.load(std::memory_order_acquire);
    // A node retired in epoch r may be freed once the global epoch has
    // advanced at least two steps past it: every thread pinned during r
    // has since unpinned or re-pinned at a newer epoch.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < s.limbo.size(); ++i) {
        if (s.limbo[i].epoch + 2 <= safe) {
            s.limbo[i].deleter(s.limbo[i].ptr);
            freed_.fetch_add(1, std::memory_order_relaxed);
        } else {
            s.limbo[kept++] = s.limbo[i];
        }
    }
    s.limbo.resize(kept);
}

std::uint64_t epoch_manager::pending_count() const {
    std::uint64_t n = 0;
    for (const auto &s : slots_) {
        auto &slot = const_cast<slot_state &>(*s);
        std::lock_guard<spin_lock> lock(slot.limbo_lock);
        n += slot.limbo.size();
    }
    return n;
}

void epoch_manager::reclaim_orphans() {
    for (std::uint32_t slot = 0; slot < max_registered_threads; ++slot) {
        slot_state &s = *slots_[slot];
        // Ownership is a work filter, not the safety argument: freeing
        // is gated by each node's epoch tag under the slot lock, so a
        // thread that grabs this id between the check and the lock
        // loses nothing but some of its predecessor's garbage.
        if (thread_slot_in_use(slot))
            continue;
        std::lock_guard<spin_lock> lock(s.limbo_lock);
        if (!s.limbo.empty())
            reclaim_slot_locked(slot);
    }
}

void epoch_manager::try_reclaim() {
    try_advance();
    const std::uint32_t slot = thread_index();
    {
        std::lock_guard<spin_lock> lock(slots_[slot]->limbo_lock);
        reclaim_slot_locked(slot);
    }
    reclaim_orphans();
}

} // namespace klsm
