#pragma once

// Online per-shard controller for the k-LSM relaxation parameter.
//
// The paper fixes k at construction, but its own evaluation (and the
// follow-up "Benchmarking Concurrent Priority Queues", arXiv:1603.05047)
// shows the best k varies by orders of magnitude with thread count and
// workload; "Engineering MultiQueues" (arXiv:2504.11652) makes the case
// that online tuning of the quality/throughput knob is what makes
// relaxed queues practical without per-machine calibration.
//
// Control law (documented in README "Adaptive relaxation"):
//
//   * GROW  k <- min(2k, k_max)  when the EWMA failed-publish-CAS rate
//     crosses `grow_fail_rate` — the shared serialization point is the
//     bottleneck, so buy throughput with relaxation;
//   * SHRINK k <- max(k/2, k_min) when the EWMA falls below
//     `shrink_fail_rate` — contention has subsided, so give quality
//     headroom back;
//   * BUDGET k is additionally clamped so the configured rank budget
//     rho = T*k + k keeps headroom: k <= rank_budget / (T + 1).  The
//     budget clamp overrides growth and forces shrinks.
//
// Hysteresis comes from two sources: the dead band between the two
// thresholds (no decision fires inside it), and `cooldown_ticks`
// between consecutive changes so one noisy window cannot make the
// controller oscillate.  The walk is the classic AIMD shape adapted to
// a parameter whose useful range spans orders of magnitude: both steps
// are multiplicative so [16, 4096] is walked in 8 decisions.
//
// Every change is appended to a bounded decision log — the raw material
// for the `k_trajectory` JSON object klsm_bench emits per record, and
// for offline analysis of the control behavior.
//
// The controller is driven by one ticker thread and is not itself
// thread-safe; the queue side (set_relaxation) is, so applying the
// returned k concurrently with queue operations is always safe.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adapt/contention_monitor.hpp"

namespace klsm {
namespace adapt {

struct k_controller_config {
    std::size_t k_min = 16;
    std::size_t k_max = 4096;
    /// Grow when the EWMA failed-publish-CAS rate reaches this.
    double grow_fail_rate = 0.05;
    /// Shrink when it falls below this (the gap is the dead band).
    double shrink_fail_rate = 0.01;
    /// Minimum ticks between two consecutive k changes.
    unsigned cooldown_ticks = 2;
    /// Rank budget rho = T*k + k the controller must keep k inside;
    /// 0 disables the clamp.
    std::uint64_t rank_budget = 0;
};

/// One recorded control decision (only changes are logged; `tick` is
/// the tick count at which the new k took effect).
struct k_decision {
    std::uint64_t tick = 0;
    double fail_rate_ewma = 0.0;
    double shared_fraction_ewma = 0.0;
    std::size_t old_k = 0;
    std::size_t new_k = 0;
    /// "grow" | "shrink" | "budget" (static strings, never owned).
    const char *reason = "";
};

class k_controller {
public:
    /// The log is bounded so a long adaptive run cannot grow without
    /// limit; beyond this, oldest entries are dropped (the trajectory
    /// keeps its initial point separately).
    static constexpr std::size_t max_log_entries = 4096;

    k_controller(const k_controller_config &cfg, std::size_t initial_k)
        : cfg_(sanitize(cfg)),
          k_(clamp(initial_k, cfg_.k_min, cfg_.k_max)), max_k_seen_(k_) {}

    std::size_t k() const { return k_; }
    std::size_t max_k_seen() const { return max_k_seen_; }
    std::uint64_t ticks() const { return ticks_; }
    const k_controller_config &config() const { return cfg_; }
    const std::vector<k_decision> &log() const { return log_; }

    /// One control decision from the newest window; `threads` is the
    /// current participant count T for the rank-budget clamp.  Returns
    /// the (possibly unchanged) target k; the caller applies it to the
    /// queue via set_relaxation.
    std::size_t tick(const contention_window &w, unsigned threads) {
        ++ticks_;

        // The budget clamp is not subject to hysteresis: a violated
        // budget must be corrected now, not after a cooldown.
        const std::size_t budget_cap = budget_limit(threads);
        if (k_ > budget_cap) {
            change(largest_step_within(budget_cap), w, "budget");
            return k_;
        }
        if (ticks_ - last_change_tick_ < cfg_.cooldown_ticks &&
            last_change_tick_ != 0)
            return k_;
        if (w.idle())
            return k_;

        if (w.fail_rate_ewma >= cfg_.grow_fail_rate) {
            // budget_cap is already clamped to k_max.
            const std::size_t target =
                clamp(k_ * 2, cfg_.k_min, budget_cap);
            if (target > k_)
                change(target, w, "grow");
        } else if (w.fail_rate_ewma < cfg_.shrink_fail_rate) {
            const std::size_t target = clamp(k_ / 2, cfg_.k_min, cfg_.k_max);
            if (target < k_)
                change(target, w, "shrink");
        }
        // Inside the dead band: hold k (hysteresis).
        return k_;
    }

private:
    static std::size_t clamp(std::size_t v, std::size_t lo,
                             std::size_t hi) {
        return v < lo ? lo : (v > hi ? hi : v);
    }

    static k_controller_config sanitize(k_controller_config cfg) {
        if (cfg.k_min == 0)
            cfg.k_min = 1; // k == 0 degenerates to the shared LSM alone
        if (cfg.k_max < cfg.k_min)
            cfg.k_max = cfg.k_min;
        if (cfg.shrink_fail_rate > cfg.grow_fail_rate)
            cfg.shrink_fail_rate = cfg.grow_fail_rate;
        return cfg;
    }

    /// Largest k allowed by the rank budget for T = `threads`
    /// participants: T*k + k <= rank_budget.  k_min wins over the
    /// budget — the structure needs some relaxation to function, and a
    /// budget below T*k_min is a configuration contradiction resolved
    /// in favor of the structural floor.
    std::size_t budget_limit(unsigned threads) const {
        if (cfg_.rank_budget == 0)
            return cfg_.k_max;
        const std::uint64_t per_k =
            static_cast<std::uint64_t>(threads) + 1;
        const std::size_t cap =
            static_cast<std::size_t>(cfg_.rank_budget / per_k);
        return clamp(cap, cfg_.k_min, cfg_.k_max);
    }

    /// Walk toward `cap` multiplicatively (halving), so a budget
    /// correction follows the same step shape as regular shrinks.
    std::size_t largest_step_within(std::size_t cap) const {
        std::size_t k = k_;
        while (k / 2 >= cfg_.k_min && k > cap)
            k /= 2;
        return clamp(k, cfg_.k_min, cap > cfg_.k_min ? cap : cfg_.k_min);
    }

    void change(std::size_t new_k, const contention_window &w,
                const char *reason) {
        if (new_k == k_)
            return;
        if (log_.size() >= max_log_entries)
            log_.erase(log_.begin());
        log_.push_back({ticks_, w.fail_rate_ewma, w.shared_fraction_ewma,
                        k_, new_k, reason});
        k_ = new_k;
        if (k_ > max_k_seen_)
            max_k_seen_ = k_;
        last_change_tick_ = ticks_;
    }

    const k_controller_config cfg_;
    std::size_t k_;
    std::size_t max_k_seen_;
    std::uint64_t ticks_ = 0;
    std::uint64_t last_change_tick_ = 0;
    std::vector<k_decision> log_;
};

} // namespace adapt
} // namespace klsm
