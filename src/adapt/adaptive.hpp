#pragma once

// Adaptive-relaxation runtime: binds contention monitors and k
// controllers to a live queue, one control loop per shard.
//
// The pieces compose as
//
//     queue hot paths --count()--> contention_monitor   (per shard)
//     ticker --sample_window()--> k_controller.tick()   (per shard)
//            --set_relaxation()--> queue/shard
//
// A `queue_adaptor` owns the monitors and controllers, attaches them
// in its constructor, and detaches on destruction, so the queue never
// outlives dangling telemetry pointers as long as the adaptor is
// destroyed first (harness scope guarantees this: the adaptor lives on
// the benchmark's stack around the run).
//
// Plain k_lsm gets one loop; numa_klsm gets one loop per NUMA shard,
// so a hot node can run with a large k while an idle node keeps its
// quality headroom — the per-shard policy ROADMAP's "Adaptive k" item
// asks for.  tick() is driven by a single ticker thread (the harness's
// on_adapt_tick hook); it is not thread-safe against itself.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "adapt/contention_monitor.hpp"
#include "adapt/k_controller.hpp"
#include "klsm/pq_concept.hpp"
#include "trace/tracer.hpp"

namespace klsm {
namespace adapt {

/// A queue whose relaxation can be retuned online and which accepts
/// contention telemetry (k_lsm).  Built on the capability vocabulary in
/// klsm/pq_concept.hpp: adaptable = dynamic_relaxation + a monitor hook.
template <typename PQ>
concept adaptable =
    dynamic_relaxation<PQ> && requires(PQ &q, contention_monitor *m) {
        q.set_monitor(m);
    };

/// A sharded queue whose shards are individually adaptable (numa_klsm).
template <typename PQ>
concept sharded_adaptable =
    sharded<PQ> && requires(PQ &q, std::uint32_t s) {
        requires adaptable<std::remove_reference_t<decltype(q.shard(s))>>;
    };

/// Anything the adaptor can drive.
template <typename PQ>
concept adaptive_capable = adaptable<PQ> || sharded_adaptable<PQ>;

/// One trajectory point: the queue-wide k (max across shards) after
/// the change at `tick` (tick 0 is the initial state).
struct k_point {
    std::uint64_t tick = 0;
    std::size_t k = 0;
};

template <typename PQ>
    requires adaptive_capable<PQ>
class queue_adaptor {
public:
    /// Attaches monitors and aligns every shard's k with its
    /// controller's (clamped) starting point.  `threads` is the
    /// participant count T used by the rank-budget clamp.
    queue_adaptor(PQ &q, const k_controller_config &cfg, unsigned threads,
                  double ewma_alpha = 0.25)
        : q_(q), threads_(threads) {
        const std::uint32_t n = num_targets();
        loops_.reserve(n);
        for (std::uint32_t s = 0; s < n; ++s) {
            auto l = std::make_unique<loop>(ewma_alpha, cfg,
                                            target(s).relaxation());
            target(s).set_relaxation(l->ctrl.k());
            target(s).set_monitor(&l->monitor);
            loops_.push_back(std::move(l));
        }
        trajectory_.push_back({0, current_k()});
        // Second knob (dynamic_buffering queues only): the handle buffer
        // depth follows the k controller's direction within [d0/4, d0*4]
        // of the configured depth d0.  A queue the user left unbuffered
        // (d0 == 0) stays unbuffered — the adaptor never changes the
        // visibility contract on its own.
        if constexpr (dynamic_buffering<PQ>) {
            buf_initial_ = q_.buffer_depth();
            if (buf_initial_ > 0) {
                buf_min_ = std::max<std::size_t>(1, buf_initial_ / 4);
                buf_max_ = buf_initial_ * 4;
            }
        }
    }

    ~queue_adaptor() {
        for (std::uint32_t s = 0; s < num_targets(); ++s)
            target(s).set_monitor(nullptr);
    }

    queue_adaptor(const queue_adaptor &) = delete;
    queue_adaptor &operator=(const queue_adaptor &) = delete;

    /// Bound on recorded trajectory points, mirroring the controller's
    /// decision-log cap: a controller legally flip-flopping at the
    /// cooldown rate must not grow memory (or the JSON report) without
    /// limit on a long run.  The initial point is always kept.
    static constexpr std::size_t max_trajectory_points = 4096;

    /// One control round over every shard: sample its window, run its
    /// controller, apply a changed k.  Ticker-thread only.
    void tick() {
        ++ticks_;
        bool changed = false;
        for (std::uint32_t s = 0; s < num_targets(); ++s) {
            loop &l = *loops_[s];
            const contention_window w = l.monitor.sample_window();
            const std::size_t old_k = l.ctrl.k();
            const std::size_t new_k = l.ctrl.tick(w, threads_);
            if (new_k != old_k) {
                target(s).set_relaxation(new_k);
                changed = true;
                if (trace::active() && !l.ctrl.log().empty()) {
                    // One trace event per decision, kinded by the
                    // controller's reason so the trace timeline shows
                    // the direction without argument decoding.
                    const char *r = l.ctrl.log().back().reason;
                    const trace::kind tk =
                        r != nullptr && r[0] == 's'
                            ? trace::kind::k_shrink
                        : r != nullptr && r[0] == 'b'
                            ? trace::kind::k_budget
                            : trace::kind::k_grow;
                    KLSM_TRACE_EVENT(tk, old_k, new_k);
                }
            }
        }
        if (changed) {
            // Buffer depth rides the same contention signal: growing k
            // means contention (amortize harder, deepen the buffers),
            // shrinking k means quality headroom (tighten them).
            if constexpr (dynamic_buffering<PQ>) {
                if (buf_initial_ > 0) {
                    const std::size_t prev = trajectory_.back().k;
                    const std::size_t cur = current_k();
                    const std::size_t d = q_.buffer_depth();
                    const std::size_t nd =
                        cur > prev ? std::min(buf_max_, d * 2)
                        : cur < prev ? std::max(buf_min_, d / 2)
                                     : d;
                    if (nd != d)
                        q_.set_buffer_depth(nd);
                }
            }
            if (trajectory_.size() >= max_trajectory_points)
                trajectory_.erase(trajectory_.begin() + 1);
            trajectory_.push_back({ticks_, current_k()});
        }
    }

    std::uint64_t ticks() const { return ticks_; }
    std::uint32_t shards() const {
        return static_cast<std::uint32_t>(loops_.size());
    }
    const k_controller &controller(std::uint32_t s) const {
        return loops_[s]->ctrl;
    }

    /// Cumulative contention counters of one shard's monitor — safe to
    /// read concurrently with the workload and the ticker (the metrics
    /// sampler's per-shard hit-mix gauges read these mid-run).
    contention_window shard_window(std::uint32_t s) const {
        return loops_[s]->monitor.totals();
    }

    /// Queue-wide current k (max across shards).
    std::size_t current_k() const {
        std::size_t k = 0;
        for (const auto &l : loops_)
            if (l->ctrl.k() > k)
                k = l->ctrl.k();
        return k;
    }

    /// Largest k any shard ever ran with — what rank-error bounds must
    /// be computed from after the run.
    std::size_t max_k_seen() const {
        std::size_t k = 0;
        for (const auto &l : loops_)
            if (l->ctrl.max_k_seen() > k)
                k = l->ctrl.max_k_seen();
        return k;
    }

    const std::vector<k_point> &trajectory() const { return trajectory_; }

    /// The `adaptation` JSON object klsm_bench embeds per record:
    /// config, the queue-wide k trajectory, aggregate contention
    /// telemetry, and per-shard decision logs.
    std::string json() const {
        std::ostringstream os;
        os << std::setprecision(6);
        const k_controller_config &cfg = loops_[0]->ctrl.config();
        os << "{\"k_min\":" << cfg.k_min << ",\"k_max\":" << cfg.k_max;
        if (cfg.rank_budget)
            os << ",\"rank_budget\":" << cfg.rank_budget;
        os << ",\"ticks\":" << ticks_ << ",\"shards\":" << loops_.size()
           << ",\"k_initial\":" << trajectory_.front().k
           << ",\"k_final\":" << current_k()
           << ",\"k_max_seen\":" << max_k_seen();
        os << ",\"k_trajectory\":[";
        for (std::size_t i = 0; i < trajectory_.size(); ++i)
            os << (i ? "," : "") << "[" << trajectory_[i].tick << ","
               << trajectory_[i].k << "]";
        os << "]";

        if constexpr (dynamic_buffering<PQ>) {
            os << ",\"buffer\":{\"initial\":" << buf_initial_
               << ",\"final\":" << q_.buffer_depth()
               << ",\"max_seen\":" << q_.max_buffer_depth_seen() << "}";
        }

        // Aggregate contention: counter sums across shards; for the
        // EWMAs the hottest shard is the binding signal, so report the
        // max.
        contention_window sum;
        for (const auto &l : loops_) {
            const contention_window t = l->monitor.totals();
            sum.publishes += t.publishes;
            sum.publish_retries += t.publish_retries;
            sum.shared_hits += t.shared_hits;
            sum.local_hits += t.local_hits;
            sum.spies += t.spies;
            if (t.fail_rate_ewma > sum.fail_rate_ewma)
                sum.fail_rate_ewma = t.fail_rate_ewma;
            if (t.shared_fraction_ewma > sum.shared_fraction_ewma)
                sum.shared_fraction_ewma = t.shared_fraction_ewma;
        }
        os << ",\"contention\":{\"publishes\":" << sum.publishes
           << ",\"publish_retries\":" << sum.publish_retries
           << ",\"fail_rate\":" << sum.fail_rate()
           << ",\"fail_rate_ewma\":" << sum.fail_rate_ewma
           << ",\"shared_hits\":" << sum.shared_hits
           << ",\"local_hits\":" << sum.local_hits
           << ",\"shared_fraction_ewma\":" << sum.shared_fraction_ewma
           << ",\"spies\":" << sum.spies << "}";

        os << ",\"shard_decisions\":[";
        for (std::size_t s = 0; s < loops_.size(); ++s) {
            os << (s ? "," : "") << "{\"shard\":" << s << ",\"k_final\":"
               << loops_[s]->ctrl.k() << ",\"k_max_seen\":"
               << loops_[s]->ctrl.max_k_seen() << ",\"decisions\":[";
            const auto &log = loops_[s]->ctrl.log();
            for (std::size_t i = 0; i < log.size(); ++i) {
                const k_decision &d = log[i];
                os << (i ? "," : "") << "{\"tick\":" << d.tick
                   << ",\"from\":" << d.old_k << ",\"to\":" << d.new_k
                   << ",\"reason\":\"" << d.reason
                   << "\",\"fail_rate_ewma\":" << d.fail_rate_ewma
                   << ",\"shared_fraction_ewma\":"
                   << d.shared_fraction_ewma << "}";
            }
            os << "]}";
        }
        os << "]}";
        return os.str();
    }

private:
    struct loop {
        contention_monitor monitor;
        k_controller ctrl;
        loop(double alpha, const k_controller_config &cfg,
             std::size_t initial_k)
            : monitor(alpha), ctrl(cfg, initial_k) {}
    };

    std::uint32_t num_targets() const {
        if constexpr (sharded_adaptable<PQ>)
            return q_.num_shards();
        else
            return 1;
    }

    auto &target(std::uint32_t s) {
        if constexpr (sharded_adaptable<PQ>)
            return q_.shard(s);
        else
            return q_;
    }

    PQ &q_;
    const unsigned threads_;
    std::uint64_t ticks_ = 0;
    // Buffer-knob state (meaningful only for dynamic_buffering queues
    // configured with a nonzero depth).
    std::size_t buf_initial_ = 0;
    std::size_t buf_min_ = 0;
    std::size_t buf_max_ = 0;
    // unique_ptr: monitors are address-stable while attached.
    std::vector<std::unique_ptr<loop>> loops_;
    std::vector<k_point> trajectory_;
};

} // namespace adapt
} // namespace klsm
