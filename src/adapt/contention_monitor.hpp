#pragma once

// Contention telemetry for the adaptive-k control plane (src/adapt/).
//
// The k-LSM's relaxation parameter k trades delete-min quality for
// shared-component pressure: every DistLSM spill publishes a new block
// array through one CAS, so a too-small k shows up directly as failed
// publish CASes, while a too-large k shows up as deletes that never
// need the shared component at all.  This monitor captures exactly
// those signals, cheaply enough to stay on the hot paths:
//
//   * each thread owns one cache-line-aligned counter slot (the
//     src/stats/ recorder-slot pattern): increments touch only the
//     owner's line, through relaxed atomics so a concurrent reader is
//     race-free but pays nothing for coherence on the write path;
//   * a single ticker thread (the controller's driver) periodically
//     calls sample_window(), which merges all slots, diffs against the
//     previous merge, and folds the window's failed-CAS rate and
//     shared/local delete-hit mix into EWMAs.
//
// The monitor is passive: it never touches the queue.  Attachment is a
// relaxed atomic pointer inside the queue (k_lsm::set_monitor), so the
// un-instrumented hot path pays one predictable branch.

#include <atomic>
#include <cstdint>

#include "util/align.hpp"
#include "util/thread_id.hpp"

namespace klsm {
namespace adapt {

/// The contention events the queue reports.  Kept as an enum so the
/// record path indexes an array.
enum class event : unsigned {
    /// shared_lsm::insert published its snapshot (CAS succeeded).
    shared_publish = 0,
    /// shared_lsm::insert lost the publish CAS and rebuilt (the primary
    /// contention signal: another thread won the serialization point).
    shared_publish_retry,
    /// try_delete_min took its item from the shared component.
    delete_hit_shared,
    /// try_delete_min took its item from the caller's own DistLSM.
    delete_hit_local,
    /// A spy copied items out of another thread's DistLSM (both own
    /// components observed empty).
    spy,
};
inline constexpr unsigned event_kinds = 5;

/// One sampling window's view of the queue: raw per-event deltas since
/// the previous sample_window() call plus the monitor's EWMAs after
/// folding this window in.  Plain data so controller tests can script
/// synthetic traces without a live queue.
struct contention_window {
    std::uint64_t publishes = 0;
    std::uint64_t publish_retries = 0;
    std::uint64_t shared_hits = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t spies = 0;

    /// EWMA of the failed-publish-CAS rate; NaN-free (0 before the
    /// first window with publish activity).
    double fail_rate_ewma = 0.0;
    /// EWMA of the fraction of successful deletes served by the shared
    /// component.
    double shared_fraction_ewma = 0.0;

    std::uint64_t publish_attempts() const {
        return publishes + publish_retries;
    }
    double fail_rate() const {
        const std::uint64_t a = publish_attempts();
        return a ? static_cast<double>(publish_retries) /
                       static_cast<double>(a)
                 : 0.0;
    }
    double shared_fraction() const {
        const std::uint64_t h = shared_hits + local_hits;
        return h ? static_cast<double>(shared_hits) /
                       static_cast<double>(h)
                 : 0.0;
    }
    /// True when the window saw no activity at all (idle queue): the
    /// EWMAs were carried over, not updated.
    bool idle() const {
        return publish_attempts() == 0 && shared_hits + local_hits == 0 &&
               spies == 0;
    }
};

class contention_monitor {
public:
    /// `ewma_alpha` is the weight of the newest window when folding
    /// rates into the EWMAs (higher = more reactive).
    explicit contention_monitor(double ewma_alpha = 0.25)
        : alpha_(ewma_alpha) {}

    contention_monitor(const contention_monitor &) = delete;
    contention_monitor &operator=(const contention_monitor &) = delete;

    /// Hot path: bump the calling thread's counter for `e`.  Owner-only
    /// writes through relaxed atomics: no RMW, no shared lines.
    void count(event e) {
        std::atomic<std::uint64_t> &c =
            slots_[thread_index()].counts[static_cast<unsigned>(e)];
        c.store(c.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    /// Ticker-only: merge all slots, return the deltas since the last
    /// call, and fold the window into the EWMAs.  Not thread-safe
    /// against itself — one ticker per monitor, as one controller per
    /// shard implies.
    contention_window sample_window() {
        std::uint64_t totals[event_kinds];
        merge(totals);
        contention_window w;
        w.publishes = totals[idx(event::shared_publish)] -
                      last_[idx(event::shared_publish)];
        w.publish_retries = totals[idx(event::shared_publish_retry)] -
                            last_[idx(event::shared_publish_retry)];
        w.shared_hits = totals[idx(event::delete_hit_shared)] -
                        last_[idx(event::delete_hit_shared)];
        w.local_hits = totals[idx(event::delete_hit_local)] -
                       last_[idx(event::delete_hit_local)];
        w.spies = totals[idx(event::spy)] - last_[idx(event::spy)];
        for (unsigned i = 0; i < event_kinds; ++i)
            last_[i] = totals[i];

        // Fold rates into the EWMAs on any active window; a fully idle
        // window must not decay a real contention reading into a
        // phantom "all quiet".  An *active* window without publish
        // attempts counts as fail-rate evidence of 0 — on a
        // delete-heavy phase publishes stop entirely, and freezing the
        // EWMA there would pin k at its contended-phase value forever.
        if (!w.idle())
            fail_rate_ewma_ =
                alpha_ * w.fail_rate() + (1.0 - alpha_) * fail_rate_ewma_;
        if (w.shared_hits + w.local_hits > 0)
            shared_fraction_ewma_ = alpha_ * w.shared_fraction() +
                                    (1.0 - alpha_) * shared_fraction_ewma_;
        w.fail_rate_ewma = fail_rate_ewma_;
        w.shared_fraction_ewma = shared_fraction_ewma_;
        return w;
    }

    /// Cumulative totals since construction (diagnostics / JSON).
    /// Safe to call concurrently with count(); the EWMA fields carry
    /// the ticker's latest fold.
    contention_window totals() const {
        std::uint64_t t[event_kinds];
        merge(t);
        contention_window w;
        w.publishes = t[idx(event::shared_publish)];
        w.publish_retries = t[idx(event::shared_publish_retry)];
        w.shared_hits = t[idx(event::delete_hit_shared)];
        w.local_hits = t[idx(event::delete_hit_local)];
        w.spies = t[idx(event::spy)];
        w.fail_rate_ewma = fail_rate_ewma_;
        w.shared_fraction_ewma = shared_fraction_ewma_;
        return w;
    }

private:
    static constexpr unsigned idx(event e) {
        return static_cast<unsigned>(e);
    }

    /// One thread's private counters, padded so adjacent slots never
    /// share a cache line (five 8-byte counters fit in one line).
    struct alignas(cache_line_size) slot {
        std::atomic<std::uint64_t> counts[event_kinds] = {};
    };

    void merge(std::uint64_t (&totals)[event_kinds]) const {
        for (unsigned i = 0; i < event_kinds; ++i)
            totals[i] = 0;
        for (const slot &s : slots_)
            for (unsigned i = 0; i < event_kinds; ++i)
                totals[i] += s.counts[i].load(std::memory_order_relaxed);
    }

    slot slots_[max_registered_threads];
    const double alpha_;
    // Ticker-only state: snapshot of the previous merge and the EWMAs.
    std::uint64_t last_[event_kinds] = {};
    double fail_rate_ewma_ = 0.0;
    double shared_fraction_ewma_ = 0.0;
};

} // namespace adapt
} // namespace klsm
